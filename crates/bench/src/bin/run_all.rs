//! Runs the experiment battery (every figure and table, or a `--only`
//! selection) **in-process** on the campaign engine, capturing each
//! experiment's output under `results/`.
//!
//! All experiments share one [`microlib_bench::Context`]: the standard
//! 26×13 campaign is swept exactly once and reused by the eight
//! experiments that need it, and the context's battery-wide
//! [`ArtifactStore`](microlib::ArtifactStore) shares traces, warm-state
//! checkpoints and duplicated cells across the rest. Captured outputs
//! contain only deterministic content (progress and timing go to stderr),
//! so `results/` is bit-identical for any `MICROLIB_THREADS` value, with
//! artifact sharing on or off (`MICROLIB_ARTIFACTS=off`), and with the
//! disk cache cold, warm or disabled.
//!
//! # Usage
//!
//! ```text
//! run_all [--sampled] [--only <name>[,<name>...]]
//!         [--cache-dir <dir>] [--no-cache] [--verify-golden <dir>]
//! ```
//!
//! `--only` filters the battery by experiment name (exact or unambiguous
//! prefix — `--only fig03` runs `fig03_dbcp_fix`), so a single figure can
//! be (re)produced without the whole battery.
//!
//! `--sampled` runs every sweep SimPoint-sampled (sets `MICROLIB_SAMPLED=1`
//! unless an explicit spec is already in the environment) and writes to
//! `results-sampled/` so the committed full-mode `results/` stay
//! untouched. The `ablation_sampling` experiment — which exists to compare
//! sampled against full simulation — is excluded from the default sampled
//! battery (select it explicitly with `--only` if wanted).
//!
//! # The persistent cache
//!
//! By default the battery runs over a persistent on-disk artifact cache
//! (`.microlib-cache/`, or `$MICROLIB_CACHE_DIR`, or `--cache-dir <dir>`):
//! finished cells, sampling plans and warm-state checkpoints are journaled
//! to disk as they complete, so a killed run resumes where it stopped, a
//! re-run is served from disk (`recomputed 0 cells` on stderr), and a
//! config/window tweak recomputes only the cells it touches. `--no-cache`
//! (or `MICROLIB_CACHE_DIR=off`) runs memory-only. Entries are checksummed
//! and version-stamped; corrupt or stale files are recomputed, never
//! trusted.
//!
//! # The golden gate
//!
//! `--verify-golden <dir>` re-runs the selected battery and byte-compares
//! every produced results file against the committed snapshot in `<dir>`,
//! exiting nonzero on any drift — CI runs this on every PR so a silent
//! CPI change cannot land unnoticed.
//!
//! # Exit status
//!
//! `0` only if every selected experiment ran cleanly (and, with
//! `--verify-golden`, matched the snapshot). Any failed experiment — or
//! any failed campaign cell inside one — is summarized per cell on stderr
//! and the process exits `1`.

use microlib_bench::{experiments, Context};
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::process::exit;
use std::time::Instant;

/// Resolves one `--only` entry against the experiment list (exact name
/// wins, else an unambiguous prefix).
fn resolve(name: &str) -> Result<&'static str, String> {
    if let Some((exact, _)) = experiments::ALL.iter().find(|(n, _)| *n == name) {
        return Ok(exact);
    }
    let matches: Vec<&'static str> = experiments::ALL
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| n.starts_with(name))
        .collect();
    match matches.as_slice() {
        [one] => Ok(one),
        [] => Err(format!(
            "unknown experiment {name:?}; available:\n  {}",
            experiments::ALL
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join("\n  ")
        )),
        many => Err(format!(
            "ambiguous experiment {name:?}: {}",
            many.join(", ")
        )),
    }
}

/// The parsed command line.
struct Cli {
    selected: Vec<&'static str>,
    sampled: bool,
    /// `None` = memory-only (`--no-cache`); `Some(dir)` = disk tier at
    /// `dir`.
    cache_dir: Option<String>,
    /// Golden snapshot directory to verify against, if requested.
    verify_golden: Option<String>,
}

/// Parses the command line (see the module docs for the grammar).
fn selection() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut selected: Vec<&'static str> = Vec::new();
    let mut explicit = false;
    let mut sampled = false;
    let mut no_cache = false;
    let mut cache_dir: Option<String> = None;
    let mut verify_golden: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sampled" => sampled = true,
            "--no-cache" => no_cache = true,
            "--cache-dir" => {
                cache_dir = Some(args.next().ok_or("--cache-dir needs a directory")?);
            }
            "--verify-golden" => {
                verify_golden = Some(args.next().ok_or("--verify-golden needs a directory")?);
            }
            "--only" => {
                explicit = true;
                let list = args
                    .next()
                    .ok_or_else(|| "--only needs a comma-separated experiment list".to_owned())?;
                for name in list.split(',').filter(|s| !s.is_empty()) {
                    let resolved = resolve(name)?;
                    if !selected.contains(&resolved) {
                        selected.push(resolved);
                    }
                }
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (expected --sampled, --only <list>, \
                     --cache-dir <dir>, --no-cache or --verify-golden <dir>)"
                ))
            }
        }
    }
    if !explicit {
        selected = experiments::ALL
            .iter()
            .map(|(n, _)| *n)
            // The sampled-vs-full calibration study forces a full-mode
            // standard campaign, defeating the point of a sampled battery.
            .filter(|n| !(sampled && *n == "ablation_sampling"))
            .collect();
    }
    // Cache resolution: --no-cache wins; then --cache-dir; then the
    // environment (including its own off switch); then the default dir.
    let cache_dir = if no_cache {
        None
    } else if cache_dir.is_some() {
        cache_dir
    } else if std::env::var("MICROLIB_CACHE_DIR").is_err() {
        Some(".microlib-cache".to_owned())
    } else {
        // Set in the environment: let the library's parse (shared with
        // every other binary) decide whether the value means "off".
        microlib::ArtifactStore::cache_dir_from_env().map(|p| p.to_string_lossy().into_owned())
    };
    Ok(Cli {
        selected,
        sampled,
        cache_dir,
        verify_golden,
    })
}

/// Byte-compares every selected results file against the golden snapshot.
/// Returns the number of mismatched (or missing) files.
fn verify_golden(out_dir: &str, golden_dir: &str, selected: &[&str]) -> usize {
    let mut drifted = 0usize;
    println!("\nverifying {out_dir}/ against golden snapshot {golden_dir}/");
    for name in selected {
        let produced = fs::read(format!("{out_dir}/{name}.txt"));
        let golden = fs::read(format!("{golden_dir}/{name}.txt"));
        match (produced, golden) {
            (Ok(p), Ok(g)) if p == g => println!("  ok      {name}"),
            (Ok(_), Ok(_)) => {
                drifted += 1;
                println!(
                    "  DRIFT   {name} (run `diff {golden_dir}/{name}.txt {out_dir}/{name}.txt`)"
                );
            }
            (_, Err(_)) => {
                drifted += 1;
                println!("  MISSING {name} (no golden file — regenerate the snapshot?)");
            }
            (Err(_), _) => {
                drifted += 1;
                println!("  MISSING {name} (experiment produced no output)");
            }
        }
    }
    drifted
}

fn main() {
    let cli = match selection() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            exit(2);
        }
    };
    // `--sampled` must actually sample: override an unset or *disabling*
    // MICROLIB_SAMPLED (a stale `=0` in the shell would otherwise run the
    // whole battery in full mode while labeling the output sampled), but
    // respect an explicit sampling spec.
    if cli.sampled
        && matches!(
            std::env::var("MICROLIB_SAMPLED").as_deref(),
            Err(_) | Ok("" | "0" | "off" | "false")
        )
    {
        std::env::set_var("MICROLIB_SAMPLED", "1");
    }
    // The Context builds its store from the environment; publish the
    // resolved cache decision there (mirrors the --sampled handling).
    match &cli.cache_dir {
        Some(dir) => std::env::set_var("MICROLIB_CACHE_DIR", dir),
        None => std::env::set_var("MICROLIB_CACHE_DIR", "off"),
    }
    let out_dir = if cli.sampled {
        "results-sampled"
    } else {
        "results"
    };
    fs::create_dir_all(out_dir).expect("results dir");
    let mut cx = Context::new();
    let battery = Instant::now();
    let mut failed: Vec<&'static str> = Vec::new();
    let mut ran = 0usize;
    for (name, run) in experiments::ALL {
        if !cli.selected.contains(name) {
            continue;
        }
        ran += 1;
        println!(">>> {name}");
        let t = Instant::now();
        let mut captured: Vec<u8> = Vec::new();
        // One failing experiment (a panicking sweep cell, say) must not
        // sink the rest of the battery: catch it, keep the partial
        // capture for diagnosis, move on — the old child-process
        // orchestrator's isolation, kept across the in-process port.
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| run(&mut cx, &mut captured)));
        let path = format!("{out_dir}/{name}.txt");
        fs::write(&path, &captured).expect("write result");
        match outcome {
            Ok(Ok(())) => println!("    -> {path} ({:.1?})", t.elapsed()),
            Ok(Err(e)) => {
                failed.push(name);
                eprintln!("{name} FAILED writing output: {e} (partial capture in {path})");
            }
            Err(payload) => {
                failed.push(name);
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic");
                eprintln!("{name} FAILED: {msg} (partial capture in {path})");
            }
        }
        // Warm checkpoints only pay off within one experiment's sweeps
        // (different experiments warm different configurations); traces
        // and the cell memo keep earning across the battery and stay.
        // (The disk tier keeps its copies — a later experiment or process
        // with the same configuration re-hydrates from disk.)
        cx.store().clear_warm_states();
    }
    let stats = cx.store().stats();
    eprintln!(
        "artifact store: traces {}/{} hits, warm states {}/{} hits, sampling plans {}/{} hits, cell memo {}/{} hits",
        stats.trace_hits,
        stats.trace_hits + stats.trace_misses,
        stats.warm_hits,
        stats.warm_hits + stats.warm_misses,
        stats.plan_hits,
        stats.plan_hits + stats.plan_misses,
        stats.memo_hits,
        stats.memo_hits + stats.memo_misses + stats.memo_disk_hits,
    );
    match cx.store().disk_cache() {
        Some(disk) => eprintln!(
            "disk cache ({}): {} memo hits, {} plan hits, {} warm hits; recomputed {} cells",
            disk.root().display(),
            stats.memo_disk_hits,
            stats.plan_disk_hits,
            stats.warm_disk_hits,
            stats.cells_recomputed(),
        ),
        None => eprintln!("disk cache: off"),
    }

    // A partially failed battery must never look green: summarize every
    // failed experiment — and every failed campaign cell — then exit 1.
    let cell_failures = cx.cell_failures();
    if !failed.is_empty() || !cell_failures.is_empty() {
        eprintln!("\nBATTERY FAILED — {} experiment(s):", failed.len());
        for name in &failed {
            eprintln!("  {name}");
        }
        if !cell_failures.is_empty() {
            eprintln!("failed campaign cells:");
            for line in &cell_failures {
                eprintln!("  {line}");
            }
        }
        println!(
            "\n{ran} experiments attempted in {:.1?} ({} failed); results under {out_dir}/",
            battery.elapsed(),
            failed.len()
        );
        exit(1);
    }
    // The golden gate runs before the success banner: a drifting run
    // must never print "done (0 failed)" and then exit 1.
    if let Some(golden_dir) = &cli.verify_golden {
        let drifted = verify_golden(out_dir, golden_dir, &cli.selected);
        if drifted > 0 {
            eprintln!("golden verification FAILED: {drifted} file(s) drifted");
            exit(1);
        }
        println!("golden verification passed ({} files)", cli.selected.len());
    }
    println!(
        "\nall {ran} experiments done in {:.1?} (0 failed); results under {out_dir}/",
        battery.elapsed()
    );
}
