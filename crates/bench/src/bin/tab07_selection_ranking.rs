//! Standalone entry point for the `tab07_selection_ranking` experiment; the body lives in
//! [`microlib_bench::experiments::tab07_selection_ranking`] so `run_all` can execute it
//! in-process against the shared campaign context.

fn main() {
    let mut cx = microlib_bench::Context::new();
    let stdout = std::io::stdout();
    microlib_bench::experiments::tab07_selection_ranking::run(&mut cx, &mut stdout.lock())
        .expect("write experiment output");
}
