//! Fig 9 — "Effect of the cache model accuracy" (MSHR size): the sweep with
//! the baseline finite MSHR file (8 entries × 4 reads) vs SimpleScalar's
//! unlimited one. Paper: a limited-but-peculiar effect that can change
//! ranking — some mechanisms do *better* with a finite MSHR (TCP loses to
//! TK only when the MSHR is finite, because a full MSHR stalls the cache
//! and frees the bus for TK's L1 prefetches).

use microlib::report::text_table;
use microlib::{run_matrix, ExperimentConfig};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;

fn main() {
    microlib_bench::header(
        "fig09_mshr",
        "Fig 9 (Effect of the cache model accuracy: MSHR size)",
        "Mean speedups with the finite (8-entry) vs infinite miss address file",
    );
    let base = microlib_bench::std_experiment();

    let finite = run_matrix(&base).expect("finite sweep");
    let mut infinite_cfg = ExperimentConfig {
        system: SystemConfig {
            ..base.system.clone()
        },
        ..base.clone()
    };
    infinite_cfg.system.fidelity.finite_mshr = false;
    let infinite = run_matrix(&infinite_cfg).expect("infinite sweep");

    let names: Vec<&str> = base.benchmarks.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for k in finite.mechanisms() {
        if *k == MechanismKind::Base {
            continue;
        }
        let f = finite.mean_speedup_over(*k, &names);
        let i = infinite.mean_speedup_over(*k, &names);
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", f),
            format!("{:.3}", i),
            format!("{:+.3}", f - i),
        ]);
    }
    println!(
        "{}",
        text_table(
            &["mechanism", "finite MSHR (8)", "infinite MSHR", "finite - infinite"],
            &rows
        )
    );
    println!("positive deltas = mechanisms that perform *better* with the realistic finite MSHR,");
    println!("the paper's \"surprising\" observation.");
}
