//! Table 6 — "Which mechanism can be the best with N benchmarks?":
//! exhaustively enumerates *every* benchmark subset (2²⁶ − 1 of them, via a
//! Gray-code walk) and records, per subset size N, which mechanisms can win
//! some N-benchmark selection. The paper's cherry-picking result: for any
//! N ≤ 23 there is more than one possible winner, and even poor-on-average
//! mechanisms (FVC, Markov) win surprisingly large selections.

use microlib::report::text_table;
use microlib::{run_matrix, subset_winner_analysis};

fn main() {
    microlib_bench::header(
        "tab06_subset_winners",
        "Table 6 (Which mechanism can be the best with N benchmarks?)",
        "Exhaustive Gray-code enumeration of all benchmark subsets",
    );
    let cfg = microlib_bench::std_experiment();
    let matrix = run_matrix(&cfg).expect("sweep runs");
    let t = std::time::Instant::now();
    let analysis = subset_winner_analysis(&matrix);
    println!(
        "enumerated {} subsets in {:?}\n",
        (1u64 << matrix.benchmarks().len()) - 1,
        t.elapsed()
    );

    // The paper's table: rows = N, columns = mechanisms, check = can win.
    let mut headers: Vec<String> = vec!["N".into()];
    headers.extend(analysis.mechanisms.iter().map(|k| k.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for n in 1..=analysis.benchmark_count {
        let mut row = vec![n.to_string()];
        for k in &analysis.mechanisms {
            row.push(if analysis.wins_at(*k, n) { "x".into() } else { String::new() });
        }
        rows.push(row);
    }
    println!("{}", text_table(&header_refs, &rows));

    let mut multi = 0;
    for n in 1..=analysis.benchmark_count {
        if analysis.winners_at(n) > 1 {
            multi = n;
        }
    }
    println!("largest N with more than one possible winner: {multi}  (paper: 23)");
    for k in &analysis.mechanisms {
        if let Some(n) = analysis.max_winning_size(*k) {
            println!("  {:8} can win selections up to N = {}", k.to_string(), n);
        }
    }
}
