//! Standalone entry point for the `tab06_subset_winners` experiment; the body lives in
//! [`microlib_bench::experiments::tab06_subset_winners`] so `run_all` can execute it
//! in-process against the shared campaign context.

fn main() {
    let mut cx = microlib_bench::Context::new();
    let stdout = std::io::stdout();
    microlib_bench::experiments::tab06_subset_winners::run(&mut cx, &mut stdout.lock())
        .expect("write experiment output");
}
