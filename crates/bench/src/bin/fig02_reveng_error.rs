//! Fig 2 — "Validation of TK, TCP and TKVC": relative speedup error of the
//! reproduction's standard setup against the original articles' setup
//! (long arbitrary trace window + constant 70-cycle memory). The paper read
//! the reference numbers off the articles' graphs and found a 5% average
//! error with occasional tendency flips (speedup↔slowdown); here the
//! article numbers are *reproduced* by running the article setup (see
//! DESIGN.md §2 on this substitution).

use microlib::report::{pct, text_table};
use microlib::compare_setups;
use microlib_mech::MechanismKind;
use microlib_trace::benchmarks;

fn main() {
    microlib_bench::header(
        "fig02_reveng_error",
        "Fig 2 (Validation of TK, TCP and TKVC)",
        "Relative speedup error: our setup vs article setup, per benchmark",
    );
    let ours = microlib_bench::std_window();
    let article = microlib_bench::article_window();
    let seed = microlib_bench::std_seed();

    for kind in [MechanismKind::Tk, MechanismKind::Tcp, MechanismKind::Tkvc] {
        println!("--- {kind} ---");
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        let mut flips = 0;
        for bench in benchmarks::NAMES {
            match compare_setups(kind, bench, ours, article, seed) {
                Ok(cmp) => {
                    errors.push(cmp.relative_error_percent().abs());
                    if cmp.tendency_flipped() {
                        flips += 1;
                    }
                    rows.push(vec![
                        bench.to_owned(),
                        format!("{:.3}", cmp.ours),
                        format!("{:.3}", cmp.article_setup),
                        pct(cmp.relative_error_percent()),
                        if cmp.tendency_flipped() { "FLIP".into() } else { String::new() },
                    ]);
                }
                Err(e) => rows.push(vec![bench.to_owned(), "-".into(), "-".into(), format!("{e}"), String::new()]),
            }
        }
        println!(
            "{}",
            text_table(
                &["benchmark", "our speedup", "article-setup speedup", "error", "tendency"],
                &rows
            )
        );
        if let Some(avg) = microlib_model::stats::mean(&errors) {
            println!("{kind}: average |error| {avg:.1}%, tendency flips {flips}  (paper: 5% average, occasional flips)\n");
        }
    }
}
