//! Fig 6 — "Benchmark sensitivity": the per-benchmark spread of speedups
//! across all mechanisms. Some benchmarks barely react to any data-cache
//! optimization; others make or break a mechanism's average — which is why
//! benchmark selection can steer conclusions (Table 6/7, Fig 7).

use microlib::report::{bar, text_table};
use microlib::{benchmark_sensitivity, run_matrix};

fn main() {
    microlib_bench::header(
        "fig06_benchmark_sensitivity",
        "Fig 6 (Benchmark sensitivity)",
        "Speedup spread (max - min over mechanisms) per benchmark, most sensitive first",
    );
    let cfg = microlib_bench::std_experiment();
    let matrix = run_matrix(&cfg).expect("sweep runs");
    let rows = benchmark_sensitivity(&matrix);
    let max_span = rows.first().map(|r| r.span()).unwrap_or(1.0).max(0.05);
    let mut table = Vec::new();
    for r in &rows {
        println!("{}", bar(&r.benchmark, r.span(), max_span, 40));
        table.push(vec![
            r.benchmark.clone(),
            format!("{:.3}", r.min_speedup),
            format!("{:.3}", r.max_speedup),
            format!("{:.3}", r.span()),
        ]);
    }
    println!();
    println!("{}", text_table(&["benchmark", "min speedup", "max speedup", "span"], &table));
    println!("paper's high-sensitivity set: apsi, equake, fma3d, mgrid, swim, gap");
    println!("paper's low-sensitivity set:  wupwise, bzip2, crafty, eon, perlbmk, vortex");
}
