//! Fig 11 — "Effect of trace selection": the arbitrary "skip N, simulate M"
//! windows most articles used vs SimPoint-selected representative
//! intervals. Paper: the two methods differ significantly, most mechanisms
//! look better on arbitrary windows, and even multi-billion-instruction
//! windows are no safe precaution.

use microlib::report::text_table;
use microlib::{run_matrix, ExperimentConfig};
use microlib_mech::MechanismKind;
use microlib_trace::{benchmarks, simpoint, BbvProfiler, TraceWindow, Workload};

fn main() {
    microlib_bench::header(
        "fig11_trace_selection",
        "Fig 11 (Effect of trace selection)",
        "Arbitrary skip/simulate window vs the SimPoint-selected interval",
    );
    let base = microlib_bench::std_experiment();
    let seed = microlib_bench::std_seed();
    let window = microlib_bench::std_window();

    // Arbitrary window (what most articles do).
    let arbitrary = run_matrix(&base).expect("arbitrary-window sweep");

    // SimPoint per benchmark: profile BBVs over a profiling prefix, pick
    // the primary simulation point, simulate that interval.
    let interval = window.simulate;
    let profile_len = interval * 8;
    println!("profiling {profile_len} instructions per benchmark in {interval}-instruction intervals…\n");

    let mut rows = Vec::new();
    let mechanisms = base.mechanisms.clone();
    let mut simpoint_means: Vec<(MechanismKind, Vec<f64>)> =
        mechanisms.iter().map(|k| (*k, Vec::new())).collect();
    for bench in benchmarks::NAMES {
        let workload = Workload::new(benchmarks::by_name(bench).unwrap(), seed);
        let mut profiler = BbvProfiler::new(interval);
        for inst in workload.stream().take(profile_len as usize) {
            profiler.observe(&inst);
        }
        let vectors = BbvProfiler::to_matrix(profiler.intervals());
        let chosen = simpoint::primary_simpoint(&vectors, 6, seed).map(|p| p.interval).unwrap_or(0);
        let sp_window = TraceWindow::simpoint_interval(chosen, interval);
        let cfg = ExperimentConfig {
            benchmarks: vec![bench.to_owned()],
            window: sp_window,
            ..base.clone()
        };
        let m = run_matrix(&cfg).expect("simpoint sweep");
        for (k, acc) in &mut simpoint_means {
            acc.push(m.speedup(bench, *k));
        }
        rows.push(vec![bench.to_owned(), format!("interval {chosen} ({sp_window})")]);
    }
    println!("{}", text_table(&["benchmark", "SimPoint choice"], &rows));

    let names: Vec<&str> = base.benchmarks.iter().map(String::as_str).collect();
    let mut table = Vec::new();
    for (k, acc) in &simpoint_means {
        if *k == MechanismKind::Base {
            continue;
        }
        let arb = arbitrary.mean_speedup_over(*k, &names);
        let sp = microlib_model::stats::mean(acc).unwrap_or(0.0);
        table.push(vec![
            k.to_string(),
            format!("{:.3}", arb),
            format!("{:.3}", sp),
            format!("{:+.3}", arb - sp),
        ]);
    }
    println!(
        "{}",
        text_table(
            &["mechanism", "arbitrary window", "SimPoint interval", "arbitrary - simpoint"],
            &table
        )
    );
    println!("paper: \"most mechanisms appear to perform better with an arbitrary 2-billion");
    println!("trace, with the notable exception of TP\" — trace selection steers decisions.");
}
