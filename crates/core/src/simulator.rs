//! The canonical driver: workload + out-of-order core + memory hierarchy +
//! one mechanism, run over a trace window.

use crate::artifacts::ArtifactStore;
use microlib_cpu::{CoreStats, OoOCore};
use microlib_mech::MechanismKind;
use microlib_mem::{IntegrityError, MemorySystem};
use microlib_model::{
    CacheStats, ConfigError, HardwareBudget, MechanismStats, MemoryStats, PerfSummary,
    PrefetchQueueStats, SystemConfig,
};
use microlib_trace::{benchmarks, InstStream, TraceBuffer, TraceWindow, Workload};
use std::fmt;
use std::sync::Arc;

/// Everything a simulation run needs besides the system configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Workload layout/stream seed.
    pub seed: u64,
    /// Trace window to simulate.
    pub window: TraceWindow,
    /// Whether to run the per-load value-integrity checker (on by default;
    /// it is cheap and catches protocol bugs).
    pub check_values: bool,
    /// Hard cycle budget per run (guards against configuration-induced
    /// livelock).
    pub max_cycles: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 0xC0FFEE,
            window: TraceWindow::new(20_000, 100_000),
            check_values: true,
            max_cycles: 0, // derived from the window
        }
    }
}

impl SimOptions {
    /// The effective cycle budget.
    pub fn cycle_budget(&self) -> u64 {
        if self.max_cycles > 0 {
            self.max_cycles
        } else {
            // Generous: even IPC 0.01 fits.
            self.window.simulate.max(1_000) * 120 + 200_000
        }
    }
}

/// Complete measurements from one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Benchmark name (the registry's static name — benchmarks are a
    /// static catalog, so results carry no per-run string allocation).
    pub benchmark: &'static str,
    /// Mechanism configuration simulated.
    pub mechanism: MechanismKind,
    /// Committed instructions / cycles.
    pub perf: PerfSummary,
    /// Core counters.
    pub core: CoreStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Main-memory counters.
    pub memory: MemoryStats,
    /// Mechanism counters (L1 slot).
    pub mech_l1: Option<MechanismStats>,
    /// Mechanism counters (L2 slot).
    pub mech_l2: Option<MechanismStats>,
    /// Prefetch-queue counters (L1 slot).
    pub queue_l1: Option<PrefetchQueueStats>,
    /// Prefetch-queue counters (L2 slot).
    pub queue_l2: Option<PrefetchQueueStats>,
    /// The mechanism's hardware inventory.
    pub hardware: HardwareBudget,
}

impl RunResult {
    /// The mechanism's combined activity counters (whichever slot it used).
    pub fn mechanism_stats(&self) -> MechanismStats {
        self.mech_l1.or(self.mech_l2).unwrap_or_default()
    }
}

/// Why a simulation run failed.
#[derive(Debug)]
pub enum SimError {
    /// The system configuration was rejected.
    Config(ConfigError),
    /// The benchmark name is not in the registry.
    UnknownBenchmark(String),
    /// A loaded value diverged from the architectural memory image.
    Integrity {
        /// Benchmark being simulated.
        benchmark: String,
        /// The divergence.
        error: IntegrityError,
    },
    /// The run exceeded its cycle budget.
    Timeout {
        /// Benchmark being simulated.
        benchmark: String,
        /// Budget that was exhausted.
        cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::UnknownBenchmark(n) => write!(f, "unknown benchmark {n:?}"),
            SimError::Integrity { benchmark, error } => {
                write!(f, "{benchmark}: {error}")
            }
            SimError::Timeout { benchmark, cycles } => {
                write!(f, "{benchmark}: exceeded {cycles}-cycle budget")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// Runs one (benchmark, mechanism, configuration) simulation on the
/// legacy cold path (fresh trace generation, full warmup). Sweeps should
/// prefer [`run_one_with`], which shares mechanism-independent artifacts.
///
/// # Errors
///
/// Returns a [`SimError`] for invalid configurations, unknown benchmarks,
/// value-integrity violations, or cycle-budget exhaustion.
///
/// # Examples
///
/// ```
/// use microlib::{run_one, SimOptions};
/// use microlib_mech::MechanismKind;
/// use microlib_model::SystemConfig;
/// use microlib_trace::TraceWindow;
///
/// let opts = SimOptions {
///     window: TraceWindow::new(0, 3_000),
///     ..SimOptions::default()
/// };
/// let result = run_one(
///     &SystemConfig::baseline_constant_memory(),
///     MechanismKind::Base,
///     "swim",
///     &opts,
/// )?;
/// assert_eq!(result.perf.instructions, 3_000);
/// assert!(result.perf.ipc() > 0.0);
/// # Ok::<(), microlib::SimError>(())
/// ```
pub fn run_one(
    config: &SystemConfig,
    mechanism: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    simulate(
        None,
        Arc::new(config.clone()),
        mechanism.build(),
        mechanism,
        benchmark,
        opts,
    )
}

/// Like [`run_one`], but sharing mechanism-independent artifacts through
/// `store`: the trace buffer and (for mechanisms whose warmup is
/// event-replayable) the warm checkpoint are computed once per
/// (benchmark, configuration) and reused, and identical cells are served
/// from the store's result memo. Results are bit-identical to
/// [`run_one`]'s.
///
/// A [disabled](ArtifactStore::disabled) store routes straight to the
/// cold path.
///
/// # Errors
///
/// Same conditions as [`run_one`].
pub fn run_one_with(
    store: &ArtifactStore,
    config: &Arc<SystemConfig>,
    mechanism: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    if !store.is_enabled() {
        return simulate(
            None,
            Arc::clone(config),
            mechanism.build(),
            mechanism,
            benchmark,
            opts,
        );
    }
    let key = ArtifactStore::memo_key(config, mechanism, benchmark, opts);
    if let Some(hit) = store.memo_get(&key) {
        return Ok((*hit).clone());
    }
    let result = simulate(
        Some(store),
        Arc::clone(config),
        mechanism.build(),
        mechanism,
        benchmark,
        opts,
    )?;
    store.memo_put(key, result.clone());
    Ok(result)
}

/// Like [`run_one`] but with a caller-constructed mechanism instance —
/// the hook for parameter studies such as Fig 10's prefetch-queue-size
/// sweep. `label` tags the result rows.
///
/// # Errors
///
/// Same conditions as [`run_one`].
pub fn run_custom(
    config: &SystemConfig,
    mech: Box<dyn microlib_model::Mechanism>,
    label: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    simulate(None, Arc::new(config.clone()), mech, label, benchmark, opts)
}

/// Like [`run_custom`], but sharing trace and warm artifacts through
/// `store`. Caller-constructed mechanisms are opaque, so — unlike
/// [`run_one_with`] — results are **not** memoized; only the
/// mechanism-independent artifacts are shared.
///
/// # Errors
///
/// Same conditions as [`run_one`].
pub fn run_custom_with(
    store: &ArtifactStore,
    config: &Arc<SystemConfig>,
    mech: Box<dyn microlib_model::Mechanism>,
    label: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    let store = store.is_enabled().then_some(store);
    simulate(store, Arc::clone(config), mech, label, benchmark, opts)
}

/// The one simulation driver behind every `run_*` entry point.
///
/// With a store, the trace is replayed from the shared [`TraceBuffer`]
/// and the warm phase either restores the shared checkpoint + replays the
/// recorded mechanism events (mechanisms that opt in via
/// [`warm_events_only`](microlib_model::Mechanism::warm_events_only)) or
/// runs the exact full warm path over the shared trace (everything else).
/// Without a store, the legacy path: generate, initialize, warm, run.
fn simulate(
    store: Option<&ArtifactStore>,
    config: Arc<SystemConfig>,
    mech: Box<dyn microlib_model::Mechanism>,
    label: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    let profile = benchmarks::by_name(benchmark)
        .ok_or_else(|| SimError::UnknownBenchmark(benchmark.to_owned()))?;
    let benchmark: &'static str = profile.name;
    let mechanism = label;
    let hardware = mech.hardware();
    let warm_replayable = mech.warm_events_only();
    let skip = opts.window.skip;

    let mut mem = MemorySystem::new(Arc::clone(&config), vec![mech])?;
    mem.set_check_values(opts.check_values);

    let mut stream: InstStream = match store {
        Some(store) => {
            let (workload, buffer) = store.trace(benchmark, opts.seed, opts.window.end())?;
            let mut stream = TraceBuffer::replay(&buffer);
            let warm = if skip > 0 && warm_replayable {
                // Fast path when the store has (or now earns) the shared
                // checkpoint: restore it and replay only the
                // mechanism-visible events. The key's first requester
                // gets `None` and warms in full — capture only pays off
                // once a state is reused.
                store.warm_state(benchmark, opts.seed, skip, &config)?
            } else {
                None
            };
            match warm {
                Some(warm) => {
                    mem.restore_warm(&warm.checkpoint);
                    mem.replay_warm_events(&warm.log);
                    stream.advance_to(skip);
                }
                None => {
                    // Exact path over the shared trace (sidecar
                    // mechanisms, first requesters, or nothing to skip).
                    workload.initialize(mem.functional_mut());
                    warm_loop(&mut mem, &mut stream, skip);
                }
            }
            stream
        }
        None => {
            let workload = Workload::new(profile, opts.seed);
            workload.initialize(mem.functional_mut());
            let mut stream = workload.stream();
            warm_loop(&mut mem, &mut stream, skip);
            stream
        }
    };
    let start = mem.finish_warmup();

    let mut core = OoOCore::new(config.core);
    let mut trace = stream.by_ref().take(opts.window.simulate as usize);
    let budget = opts.cycle_budget() + start.raw();
    let mut now = start;
    loop {
        let completions = mem.begin_cycle(now);
        core.cycle(now, &completions, &mut mem, &mut trace);
        if let Some(error) = mem.integrity_error() {
            return Err(SimError::Integrity {
                benchmark: benchmark.to_owned(),
                error,
            });
        }
        if core.drained() {
            break;
        }
        if now.raw() >= budget {
            return Err(SimError::Timeout {
                benchmark: benchmark.to_owned(),
                cycles: budget,
            });
        }
        now += 1;
    }

    let core_stats = core.stats();
    let (queue_l1, queue_l2) = mem.prefetch_queue_stats();
    Ok(RunResult {
        benchmark,
        mechanism,
        perf: PerfSummary {
            instructions: core_stats.committed,
            cycles: core_stats.cycles,
        },
        core: core_stats,
        l1d: mem.l1d_stats(),
        l1i: mem.l1i_stats(),
        l2: mem.l2_stats(),
        memory: mem.memory_stats(),
        mech_l1: mem.l1_mechanism_stats(),
        mech_l2: mem.l2_mechanism_stats(),
        queue_l1,
        queue_l2,
        hardware,
    })
}

/// The skip region warms caches and mechanism tables functionally (the
/// paper's long SimPoint traces run in steady state; see
/// [`MemorySystem::warm_inst`]) before the window is simulated in detail.
fn warm_loop(mem: &mut MemorySystem, stream: &mut InstStream, skip: u64) {
    for _ in 0..skip {
        let Some(inst) = stream.next() else { break };
        mem.warm_inst(inst.pc, inst.warm_mem_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(n: u64) -> SimOptions {
        SimOptions {
            window: TraceWindow::new(0, n),
            ..SimOptions::default()
        }
    }

    #[test]
    fn base_run_commits_every_instruction() {
        let r = run_one(
            &SystemConfig::baseline_constant_memory(),
            MechanismKind::Base,
            "crafty",
            &quick_opts(5_000),
        )
        .unwrap();
        assert_eq!(r.perf.instructions, 5_000);
        assert!(r.perf.cycles > 0);
        assert!(r.l1d.accesses() > 500, "crafty has memory traffic");
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let e = run_one(
            &SystemConfig::baseline(),
            MechanismKind::Base,
            "quake3",
            &quick_opts(100),
        )
        .unwrap_err();
        assert!(matches!(e, SimError::UnknownBenchmark(_)));
        assert!(e.to_string().contains("quake3"));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_one(
            &SystemConfig::baseline_constant_memory(),
            MechanismKind::Ghb,
            "swim",
            &quick_opts(4_000),
        )
        .unwrap();
        let b = run_one(
            &SystemConfig::baseline_constant_memory(),
            MechanismKind::Ghb,
            "swim",
            &quick_opts(4_000),
        )
        .unwrap();
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.l1d, b.l1d);
        assert_eq!(a.l2, b.l2);
    }

    #[test]
    fn every_mechanism_survives_a_smoke_run() {
        for kind in MechanismKind::study_set() {
            let r = run_one(
                &SystemConfig::baseline_constant_memory(),
                kind,
                "gzip",
                &quick_opts(3_000),
            )
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(r.perf.instructions, 3_000, "{kind:?}");
        }
    }

    #[test]
    fn sdram_memory_model_runs() {
        let r = run_one(
            &SystemConfig::baseline(),
            MechanismKind::Sp,
            "swim",
            &quick_opts(4_000),
        )
        .unwrap();
        assert!(r.memory.requests > 0, "swim must reach DRAM");
        assert!(r.memory.average_latency().unwrap() > 30.0);
    }

    #[test]
    fn window_skip_is_respected() {
        let opts = SimOptions {
            window: TraceWindow::new(5_000, 2_000),
            ..SimOptions::default()
        };
        let r = run_one(
            &SystemConfig::baseline_constant_memory(),
            MechanismKind::Base,
            "gcc",
            &opts,
        )
        .unwrap();
        assert_eq!(r.perf.instructions, 2_000);
    }
}
