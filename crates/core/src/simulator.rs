//! The canonical driver: workload + out-of-order core + memory hierarchy +
//! one mechanism, run over a trace window.

use crate::artifacts::ArtifactStore;
use crate::sampling::{run_sampled, SamplingMode};
use microlib_cpu::{CoreStats, OoOCore};
use microlib_mech::MechanismKind;
use microlib_mem::{IntegrityError, MemorySystem};
use microlib_model::{
    CacheStats, ConfigError, HardwareBudget, MechanismStats, MemoryStats, PerfSummary,
    PrefetchQueueStats, SamplingEstimate, SystemConfig,
};
use microlib_trace::{benchmarks, InstStream, TraceBuffer, TraceWindow, Workload};
use std::fmt;
use std::sync::Arc;

/// Everything a simulation run needs besides the system configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Workload layout/stream seed.
    pub seed: u64,
    /// Trace window to simulate.
    pub window: TraceWindow,
    /// Whether to run the per-load value-integrity checker (on by default;
    /// it is cheap and catches protocol bugs).
    pub check_values: bool,
    /// Hard cycle budget per run (guards against configuration-induced
    /// livelock).
    pub max_cycles: u64,
    /// How the window is covered: every instruction
    /// ([`SamplingMode::Full`], the default) or SimPoint-selected
    /// representative intervals recombined by weight
    /// ([`SamplingMode::SimPoints`]).
    pub sampling: SamplingMode,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 0xC0FFEE,
            window: TraceWindow::new(20_000, 100_000),
            check_values: true,
            max_cycles: 0, // derived from the window
            sampling: SamplingMode::Full,
        }
    }
}

impl SimOptions {
    /// The effective cycle budget.
    pub fn cycle_budget(&self) -> u64 {
        self.cycle_budget_for(self.window.simulate)
    }

    /// The effective cycle budget for a detailed phase of `instructions`
    /// (sampled runs budget each stretch separately; an explicit
    /// `max_cycles` overrides the derived bound in every mode).
    pub fn cycle_budget_for(&self, instructions: u64) -> u64 {
        if self.max_cycles > 0 {
            self.max_cycles
        } else {
            // Generous: even IPC 0.01 fits.
            instructions.max(1_000) * 120 + 200_000
        }
    }
}

/// Complete measurements from one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Benchmark name (the registry's static name — benchmarks are a
    /// static catalog, so results carry no per-run string allocation).
    pub benchmark: &'static str,
    /// Mechanism configuration simulated.
    pub mechanism: MechanismKind,
    /// Committed instructions / cycles.
    pub perf: PerfSummary,
    /// Core counters.
    pub core: CoreStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Main-memory counters.
    pub memory: MemoryStats,
    /// Mechanism counters (L1 slot).
    pub mech_l1: Option<MechanismStats>,
    /// Mechanism counters (L2 slot).
    pub mech_l2: Option<MechanismStats>,
    /// Prefetch-queue counters (L1 slot).
    pub queue_l1: Option<PrefetchQueueStats>,
    /// Prefetch-queue counters (L2 slot).
    pub queue_l2: Option<PrefetchQueueStats>,
    /// The mechanism's hardware inventory.
    pub hardware: HardwareBudget,
    /// How the result was reconstructed from sampled intervals, when the
    /// run used [`SamplingMode::SimPoints`] (`None` for full runs).
    pub sampling: Option<SamplingEstimate>,
}

impl RunResult {
    /// The mechanism's combined activity counters (whichever slot it used).
    pub fn mechanism_stats(&self) -> MechanismStats {
        self.mech_l1.or(self.mech_l2).unwrap_or_default()
    }

    /// Encodes the result for the artifact store's on-disk memo tier.
    pub fn encode(&self, e: &mut microlib_model::Encoder) {
        use microlib_model::BinCodec as _;
        e.put_str(self.benchmark);
        self.mechanism.encode(e);
        self.perf.encode(e);
        self.core.encode(e);
        self.l1d.encode(e);
        self.l1i.encode(e);
        self.l2.encode(e);
        self.memory.encode(e);
        self.mech_l1.encode(e);
        self.mech_l2.encode(e);
        self.queue_l1.encode(e);
        self.queue_l2.encode(e);
        self.hardware.encode(e);
        self.sampling.encode(e);
    }

    /// Decodes a result written by [`RunResult::encode`]. The benchmark
    /// name is resolved against the static registry (results only exist
    /// for registered benchmarks).
    ///
    /// # Errors
    ///
    /// Any [`microlib_model::CodecError`] on truncated or invalid bytes,
    /// including a benchmark name no longer in the registry.
    pub fn decode(d: &mut microlib_model::Decoder<'_>) -> Result<Self, microlib_model::CodecError> {
        use microlib_model::BinCodec as _;
        let name = d.take_str()?;
        let benchmark = benchmarks::by_name(name)
            .map(|p| p.name)
            .ok_or(microlib_model::CodecError::Invalid("unknown benchmark"))?;
        Ok(RunResult {
            benchmark,
            mechanism: MechanismKind::decode(d)?,
            perf: PerfSummary::decode(d)?,
            core: CoreStats::decode(d)?,
            l1d: CacheStats::decode(d)?,
            l1i: CacheStats::decode(d)?,
            l2: CacheStats::decode(d)?,
            memory: MemoryStats::decode(d)?,
            mech_l1: Option::decode(d)?,
            mech_l2: Option::decode(d)?,
            queue_l1: Option::decode(d)?,
            queue_l2: Option::decode(d)?,
            hardware: HardwareBudget::decode(d)?,
            sampling: Option::decode(d)?,
        })
    }
}

/// Every monotone counter bundle `simulate` reports, captured mid-run at
/// measurement boundaries and differenced.
#[derive(Clone, Copy, Debug, Default)]
struct StatsSnapshot {
    core: CoreStats,
    l1d: CacheStats,
    l1i: CacheStats,
    l2: CacheStats,
    memory: MemoryStats,
    mech_l1: Option<MechanismStats>,
    mech_l2: Option<MechanismStats>,
    queue_l1: Option<PrefetchQueueStats>,
    queue_l2: Option<PrefetchQueueStats>,
}

impl StatsSnapshot {
    fn capture(core: &OoOCore, mem: &MemorySystem) -> Self {
        let (queue_l1, queue_l2) = mem.prefetch_queue_stats();
        StatsSnapshot {
            core: core.stats(),
            l1d: mem.l1d_stats(),
            l1i: mem.l1i_stats(),
            l2: mem.l2_stats(),
            memory: mem.memory_stats(),
            mech_l1: mem.l1_mechanism_stats(),
            mech_l2: mem.l2_mechanism_stats(),
            queue_l1,
            queue_l2,
        }
    }

    /// `end - self`, field by field (all counters are monotone).
    fn delta_from(&self, end: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            core: sub_core(&end.core, &self.core),
            l1d: sub_cache(&end.l1d, &self.l1d),
            l1i: sub_cache(&end.l1i, &self.l1i),
            l2: sub_cache(&end.l2, &self.l2),
            memory: sub_memory(&end.memory, &self.memory),
            mech_l1: sub_opt(end.mech_l1, self.mech_l1, sub_mech),
            mech_l2: sub_opt(end.mech_l2, self.mech_l2, sub_mech),
            queue_l1: sub_opt(end.queue_l1, self.queue_l1, sub_queue),
            queue_l2: sub_opt(end.queue_l2, self.queue_l2, sub_queue),
        }
    }
}

fn sub_opt<T: Copy + Default>(end: Option<T>, start: Option<T>, sub: fn(&T, &T) -> T) -> Option<T> {
    end.map(|e| sub(&e, &start.unwrap_or_default()))
}

fn sub_core(a: &CoreStats, b: &CoreStats) -> CoreStats {
    CoreStats {
        committed: a.committed - b.committed,
        cycles: a.cycles - b.cycles,
        fetched: a.fetched - b.fetched,
        mispredict_stall_cycles: a.mispredict_stall_cycles - b.mispredict_stall_cycles,
        icache_stall_cycles: a.icache_stall_cycles - b.icache_stall_cycles,
        loads_forwarded: a.loads_forwarded - b.loads_forwarded,
        cache_reject_stalls: a.cache_reject_stalls - b.cache_reject_stalls,
        window_full_stalls: a.window_full_stalls - b.window_full_stalls,
        lsq_full_stalls: a.lsq_full_stalls - b.lsq_full_stalls,
        store_commit_stalls: a.store_commit_stalls - b.store_commit_stalls,
    }
}

fn sub_cache(a: &CacheStats, b: &CacheStats) -> CacheStats {
    CacheStats {
        loads: a.loads - b.loads,
        stores: a.stores - b.stores,
        misses: a.misses - b.misses,
        sidecar_hits: a.sidecar_hits - b.sidecar_hits,
        mshr_merges: a.mshr_merges - b.mshr_merges,
        mshr_full_stalls: a.mshr_full_stalls - b.mshr_full_stalls,
        pipeline_stalls: a.pipeline_stalls - b.pipeline_stalls,
        port_stalls: a.port_stalls - b.port_stalls,
        demand_fills: a.demand_fills - b.demand_fills,
        prefetch_fills: a.prefetch_fills - b.prefetch_fills,
        useful_prefetches: a.useful_prefetches - b.useful_prefetches,
        writebacks: a.writebacks - b.writebacks,
        useless_prefetch_evictions: a.useless_prefetch_evictions - b.useless_prefetch_evictions,
    }
}

fn sub_memory(a: &MemoryStats, b: &MemoryStats) -> MemoryStats {
    MemoryStats {
        requests: a.requests - b.requests,
        total_latency: a.total_latency - b.total_latency,
        row_hits: a.row_hits - b.row_hits,
        precharges: a.precharges - b.precharges,
        bus_busy_cycles: a.bus_busy_cycles - b.bus_busy_cycles,
        queue_wait_cycles: a.queue_wait_cycles - b.queue_wait_cycles,
    }
}

fn sub_mech(a: &MechanismStats, b: &MechanismStats) -> MechanismStats {
    MechanismStats {
        table_reads: a.table_reads - b.table_reads,
        table_writes: a.table_writes - b.table_writes,
        prefetches_requested: a.prefetches_requested - b.prefetches_requested,
        prefetches_useful: a.prefetches_useful - b.prefetches_useful,
        sidecar_hits: a.sidecar_hits - b.sidecar_hits,
        sidecar_misses: a.sidecar_misses - b.sidecar_misses,
        victims_captured: a.victims_captured - b.victims_captured,
    }
}

fn sub_queue(a: &PrefetchQueueStats, b: &PrefetchQueueStats) -> PrefetchQueueStats {
    PrefetchQueueStats {
        accepted: a.accepted - b.accepted,
        discarded: a.discarded - b.discarded,
        duplicates: a.duplicates - b.duplicates,
    }
}

/// Why a simulation run failed.
#[derive(Debug)]
pub enum SimError {
    /// The system configuration was rejected.
    Config(ConfigError),
    /// The benchmark name is not in the registry.
    UnknownBenchmark(String),
    /// A loaded value diverged from the architectural memory image.
    Integrity {
        /// Benchmark being simulated.
        benchmark: String,
        /// The divergence.
        error: IntegrityError,
    },
    /// The run exceeded its cycle budget.
    Timeout {
        /// Benchmark being simulated.
        benchmark: String,
        /// Budget that was exhausted.
        cycles: u64,
    },
    /// The cell crashed too many consecutive workers and was quarantined
    /// by the lease layer (see [`crate::LeaseManager`]); it was not
    /// computed, but the rest of the battery still completes.
    Quarantined {
        /// Benchmark of the poisoned cell.
        benchmark: String,
        /// Crashed attempts recorded before quarantine.
        attempts: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::UnknownBenchmark(n) => write!(f, "unknown benchmark {n:?}"),
            SimError::Integrity { benchmark, error } => {
                write!(f, "{benchmark}: {error}")
            }
            SimError::Timeout { benchmark, cycles } => {
                write!(f, "{benchmark}: exceeded {cycles}-cycle budget")
            }
            SimError::Quarantined {
                benchmark,
                attempts,
            } => {
                write!(
                    f,
                    "{benchmark}: quarantined after {attempts} crashed attempts"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// Runs one (benchmark, mechanism, configuration) simulation on the
/// legacy cold path (fresh trace generation, full warmup). Sweeps should
/// prefer [`run_one_with`], which shares mechanism-independent artifacts.
///
/// # Errors
///
/// Returns a [`SimError`] for invalid configurations, unknown benchmarks,
/// value-integrity violations, or cycle-budget exhaustion.
///
/// # Examples
///
/// ```
/// use microlib::{run_one, SimOptions};
/// use microlib_mech::MechanismKind;
/// use microlib_model::SystemConfig;
/// use microlib_trace::TraceWindow;
///
/// let opts = SimOptions {
///     window: TraceWindow::new(0, 3_000),
///     ..SimOptions::default()
/// };
/// let result = run_one(
///     &SystemConfig::baseline_constant_memory(),
///     MechanismKind::Base,
///     "swim",
///     &opts,
/// )?;
/// assert_eq!(result.perf.instructions, 3_000);
/// assert!(result.perf.ipc() > 0.0);
/// # Ok::<(), microlib::SimError>(())
/// ```
pub fn run_one(
    config: &SystemConfig,
    mechanism: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    if opts.sampling.is_sampled() {
        return run_sampled(None, Arc::new(config.clone()), mechanism, benchmark, opts);
    }
    simulate(
        None,
        Arc::new(config.clone()),
        mechanism.build(),
        mechanism,
        benchmark,
        opts,
        0,
    )
}

/// Like [`run_one`], but sharing mechanism-independent artifacts through
/// `store`: the trace buffer and (for mechanisms whose warmup is
/// event-replayable) the warm checkpoint are computed once per
/// (benchmark, configuration) and reused, and identical cells are served
/// from the store's result memo. Results are bit-identical to
/// [`run_one`]'s.
///
/// A [disabled](ArtifactStore::disabled) store routes straight to the
/// cold path.
///
/// # Errors
///
/// Same conditions as [`run_one`].
pub fn run_one_with(
    store: &ArtifactStore,
    config: &Arc<SystemConfig>,
    mechanism: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    if !store.is_enabled() {
        if opts.sampling.is_sampled() {
            return run_sampled(None, Arc::clone(config), mechanism, benchmark, opts);
        }
        return simulate(
            None,
            Arc::clone(config),
            mechanism.build(),
            mechanism,
            benchmark,
            opts,
            0,
        );
    }
    let key = ArtifactStore::memo_key(config, mechanism, benchmark, opts);
    if let Some(hit) = store.memo_probe(&key) {
        return Ok((*hit).clone());
    }
    let result = store.memo_run(
        &key,
        &format!("{benchmark} x {mechanism}"),
        benchmark,
        &repro_hint(opts),
        || {
            crate::fault::trigger("cell", &format!("{benchmark}+{mechanism}"));
            if opts.sampling.is_sampled() {
                run_sampled(Some(store), Arc::clone(config), mechanism, benchmark, opts)
            } else {
                simulate(
                    Some(store),
                    Arc::clone(config),
                    mechanism.build(),
                    mechanism,
                    benchmark,
                    opts,
                    0,
                )
            }
        },
    )?;
    Ok((*result).clone())
}

/// The environment part of a quarantined cell's minimized repro command:
/// enough to replay exactly this window and seed single-process, without
/// the cache (so the repro actually re-executes the crashing cell).
fn repro_hint(opts: &SimOptions) -> String {
    format!(
        "MICROLIB_SKIP={} MICROLIB_SIM={} MICROLIB_SEED={:#x} run_all --no-cache",
        opts.window.skip, opts.window.simulate, opts.seed
    )
}

/// Like [`run_one`] but with a caller-constructed mechanism instance —
/// the hook for parameter studies such as Fig 10's prefetch-queue-size
/// sweep. `label` tags the result rows.
///
/// The [`sampling`](SimOptions::sampling) option is ignored: sampled runs
/// re-instantiate the mechanism per representative interval, which an
/// opaque instance cannot support, so custom runs always simulate the
/// full window.
///
/// # Errors
///
/// Same conditions as [`run_one`].
pub fn run_custom(
    config: &SystemConfig,
    mech: Box<dyn microlib_model::Mechanism>,
    label: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    simulate(
        None,
        Arc::new(config.clone()),
        mech,
        label,
        benchmark,
        opts,
        0,
    )
}

/// Like [`run_custom`], but sharing trace and warm artifacts through
/// `store`. Caller-constructed mechanisms are opaque, so — unlike
/// [`run_one_with`] — results are **not** memoized (and, as with
/// [`run_custom`], the sampling option is ignored); only the
/// mechanism-independent artifacts are shared.
///
/// # Errors
///
/// Same conditions as [`run_one`].
pub fn run_custom_with(
    store: &ArtifactStore,
    config: &Arc<SystemConfig>,
    mech: Box<dyn microlib_model::Mechanism>,
    label: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    let store = store.is_enabled().then_some(store);
    simulate(store, Arc::clone(config), mech, label, benchmark, opts, 0)
}

/// Like [`run_custom_with`], but memoizable: the caller supplies a
/// `variant` tag that — together with the label and the regular content
/// key — uniquely identifies the custom mechanism's construction (e.g.
/// `"queue=1"` for a TCP built with a 1-entry request queue). With that
/// contract the result can be served from the store's memo (including its
/// on-disk tier), which plain [`run_custom_with`] must never do for an
/// opaque instance.
///
/// The caller is responsible for `variant` covering **every** parameter
/// the instance was built with; two different instances under the same
/// `(label, variant)` would alias in the memo.
///
/// As with [`run_custom`], the sampling option is ignored (custom runs
/// always simulate the full window).
///
/// # Errors
///
/// Same conditions as [`run_one`].
#[allow(clippy::too_many_arguments)] // run_custom_with plus the variant tag
pub fn run_custom_keyed(
    store: &ArtifactStore,
    config: &Arc<SystemConfig>,
    mech: Box<dyn microlib_model::Mechanism>,
    label: MechanismKind,
    variant: &str,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    if !store.is_enabled() {
        return simulate(None, Arc::clone(config), mech, label, benchmark, opts, 0);
    }
    let key = format!(
        "{}|variant={variant}",
        ArtifactStore::memo_key(config, label, benchmark, opts)
    );
    if let Some(hit) = store.memo_probe(&key) {
        return Ok((*hit).clone());
    }
    let result = store.memo_run(
        &key,
        &format!("{benchmark} x {label} [{variant}]"),
        benchmark,
        &repro_hint(opts),
        || {
            crate::fault::trigger("cell", &format!("{benchmark}+{label}"));
            simulate(
                Some(store),
                Arc::clone(config),
                mech,
                label,
                benchmark,
                opts,
                0,
            )
        },
    )?;
    Ok((*result).clone())
}

/// Builds the warmed system for a run: functional memory initialized,
/// caches and mechanism tables warmed over `[warm_start, skip)`, and the
/// instruction stream positioned at `skip`. With a store, the trace comes
/// from the shared [`TraceBuffer`] (grown to `trace_len`) and the warm
/// phase either restores the shared checkpoint + replays the recorded
/// mechanism events (mechanisms that opt in via
/// [`warm_events_only`](microlib_model::Mechanism::warm_events_only)) or
/// runs the exact full warm path over the shared trace (everything else).
/// Without a store, the legacy path: generate, initialize, warm.
#[allow(clippy::too_many_arguments)] // one bundle per warm-phase input
fn warmed_system(
    store: Option<&ArtifactStore>,
    config: &Arc<SystemConfig>,
    mem: &mut MemorySystem,
    warm_replayable: bool,
    benchmark: &'static str,
    opts: &SimOptions,
    warm_start: u64,
    trace_len: u64,
) -> Result<InstStream, SimError> {
    let skip = opts.window.skip;
    let stream = match store {
        Some(store) => {
            let (workload, buffer) = store.trace(benchmark, opts.seed, trace_len)?;
            let mut stream = TraceBuffer::replay(&buffer);
            let warm = if skip > warm_start && warm_replayable {
                // Fast path when the store has (or now earns) the shared
                // checkpoint: restore it and replay only the
                // mechanism-visible events. The key's first requester
                // gets `None` and warms in full — capture only pays off
                // once a state is reused.
                store.warm_state(benchmark, opts.seed, skip, warm_start, config)?
            } else {
                None
            };
            match warm {
                Some(warm) => {
                    mem.restore_warm(&warm.checkpoint);
                    mem.replay_warm_events(&warm.log);
                    stream.advance_to(skip);
                }
                None => {
                    // Exact path over the shared trace (sidecar
                    // mechanisms, first requesters, or nothing to skip).
                    workload.initialize(mem.functional_mut());
                    stream.advance_to(warm_start);
                    warm_loop(mem, &mut stream, skip - warm_start);
                }
            }
            stream
        }
        None => {
            let profile = benchmarks::by_name(benchmark).expect("resolved by the caller");
            // Shared instantiation: layout is paid once per (benchmark,
            // seed) process-wide, not once per run.
            let workload = Workload::shared(profile, opts.seed);
            workload.initialize(mem.functional_mut());
            let mut stream = workload.stream();
            stream.advance_to(warm_start);
            warm_loop(mem, &mut stream, skip - warm_start);
            stream
        }
    };
    Ok(stream)
}

/// The full-window simulation driver behind every `run_*` entry point.
///
/// `warm_start` truncates the functional warm phase to the instructions
/// in `[warm_start, skip)` — `0` (every full-mode run) warms the whole
/// prefix. Runs with a bounded warm-up budget pass the window start minus
/// the budget; instructions before `warm_start` are skipped entirely
/// (their stores never reach the functional image, which stays
/// self-consistent for the integrity checker but approximates the true
/// architectural state — the accuracy trade the budget buys).
pub(crate) fn simulate(
    store: Option<&ArtifactStore>,
    config: Arc<SystemConfig>,
    mech: Box<dyn microlib_model::Mechanism>,
    label: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
    warm_start: u64,
) -> Result<RunResult, SimError> {
    let profile = benchmarks::by_name(benchmark)
        .ok_or_else(|| SimError::UnknownBenchmark(benchmark.to_owned()))?;
    let benchmark: &'static str = profile.name;
    let hardware = mech.hardware();
    let warm_replayable = mech.warm_events_only();
    let warm_start = warm_start.min(opts.window.skip);

    let mut mem = MemorySystem::new(Arc::clone(&config), vec![mech])?;
    mem.set_check_values(opts.check_values);
    let mut stream = warmed_system(
        store,
        &config,
        &mut mem,
        warm_replayable,
        benchmark,
        opts,
        warm_start,
        opts.window.end(),
    )?;
    let start = mem.finish_warmup();

    let mut core = OoOCore::new(config.core);
    let mut trace = stream.by_ref().take(opts.window.simulate as usize);
    let budget = opts.cycle_budget() + start.raw();
    let mut now = start;
    let mut completions = Vec::new();
    loop {
        mem.begin_cycle_into(now, &mut completions);
        core.cycle(now, &completions, &mut mem, &mut trace);
        if let Some(error) = mem.integrity_error() {
            return Err(SimError::Integrity {
                benchmark: benchmark.to_owned(),
                error,
            });
        }
        if core.drained() {
            break;
        }
        if now.raw() >= budget {
            return Err(SimError::Timeout {
                benchmark: benchmark.to_owned(),
                cycles: budget,
            });
        }
        now += 1;
    }

    let measured = StatsSnapshot::capture(&core, &mem);
    Ok(result_from(benchmark, label, hardware, &measured))
}

/// One measured region of a sampled cell's detailed stretch, in committed
/// instructions relative to the stretch start.
struct Mark {
    begin_at: u64,
    end_at: u64,
}

/// One contiguous detailed-simulation phase of a sampled cell: fed
/// `feed` instructions starting at absolute instruction `start`, with
/// the measured regions (slices) inside it. Stretches are built from the
/// plan's slice windows; a ramp before each measured region and a tail
/// after it keep measurement in steady state, and overlapping extents
/// merge into one stretch.
struct Stretch {
    start: u64,
    feed: u64,
    marks: Vec<Mark>,
}

/// Detailed instructions committed before a measured region (fills the
/// out-of-order window so measurement starts in steady issue).
const SLICE_RAMP: u64 = 1_024;

/// Detailed instructions fed past a measured region so the pipeline stays
/// busy while the last measured instructions commit.
const SLICE_TAIL: u64 = 512;

/// Lays the plan's slice windows out as detailed stretches. `floor` is
/// the first instruction detailed simulation may touch (the window
/// start — everything before it belongs to the warm phase).
fn build_stretches(windows: &[TraceWindow], floor: u64) -> Vec<Stretch> {
    let mut stretches: Vec<Stretch> = Vec::new();
    for w in windows {
        let detail_start = w.skip.saturating_sub(SLICE_RAMP).max(floor);
        let feed_end = w.end() + SLICE_TAIL;
        match stretches.last_mut() {
            // Overlapping or touching extents merge: the previous tail
            // (or measured region) doubles as this slice's ramp.
            Some(cur) if detail_start <= cur.start + cur.feed => {
                cur.feed = cur.feed.max(feed_end - cur.start);
                cur.marks.push(Mark {
                    begin_at: w.skip - cur.start,
                    end_at: w.end() - cur.start,
                });
            }
            _ => stretches.push(Stretch {
                start: detail_start,
                feed: feed_end - detail_start,
                marks: vec![Mark {
                    begin_at: w.skip - detail_start,
                    end_at: w.end() - detail_start,
                }],
            }),
        }
    }
    stretches
}

/// The sampled-cell driver: one warm phase to the window start, then one
/// continuous pass over the trace that alternates **functional
/// fast-forward** through the gaps with **detailed stretches** over the
/// plan's slice windows. Caches, the functional memory and the mechanism
/// evolve across the whole window exactly once (the warm fidelity of the
/// skip phase, everywhere outside the slices), so slice measurements see
/// warm state without re-running a prefix per slice.
///
/// Returns one measured part per plan point, in plan order, each shaped
/// like a [`RunResult`] of its slice.
#[allow(clippy::too_many_arguments)] // mirrors `simulate` plus the plan
pub(crate) fn simulate_sampled(
    store: Option<&ArtifactStore>,
    config: Arc<SystemConfig>,
    mech: Box<dyn microlib_model::Mechanism>,
    label: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
    warm_start: u64,
    windows: &[TraceWindow],
) -> Result<Vec<RunResult>, SimError> {
    let profile = benchmarks::by_name(benchmark)
        .ok_or_else(|| SimError::UnknownBenchmark(benchmark.to_owned()))?;
    let benchmark: &'static str = profile.name;
    let hardware = mech.hardware();
    let warm_replayable = mech.warm_events_only();
    let warm_start = warm_start.min(opts.window.skip);
    let stretches = build_stretches(windows, opts.window.skip);
    let trace_len = stretches
        .last()
        .map(|s| s.start + s.feed)
        .unwrap_or(opts.window.end());

    let mut mem = MemorySystem::new(Arc::clone(&config), vec![mech])?;
    mem.set_check_values(opts.check_values);
    let mut stream = warmed_system(
        store,
        &config,
        &mut mem,
        warm_replayable,
        benchmark,
        opts,
        warm_start,
        trace_len,
    )?;

    let mut parts: Vec<RunResult> = Vec::with_capacity(windows.len());
    let mut now = mem.finish_warmup();
    // Gaps between slices apply prefetches functionally instead of
    // dropping them: a continuous detailed run would have issued them,
    // and slices measured after a prefetch-starved gap systematically
    // overstate prefetcher misses. (The prefix warm above stays in the
    // default drop mode — it must match the shared warm checkpoints.)
    mem.set_warm_prefetch_fill(true);
    for stretch in &stretches {
        // Fast-forward the gap functionally (the same fidelity as the
        // skip phase), with the warm clock resuming from detailed time.
        if stretch.start > stream.stream_position() {
            mem.resume_warmup(now);
            let gap = stretch.start - stream.stream_position();
            warm_loop(&mut mem, &mut stream, gap);
            now = mem.finish_warmup();
        }

        let mut core = OoOCore::new(config.core);
        let mut trace = stream.by_ref().take(stretch.feed as usize);
        let budget = opts.cycle_budget_for(stretch.feed) + now.raw();
        let mut marks = stretch.marks.iter();
        let mut next_mark = marks.next();
        let mut open: Option<StatsSnapshot> = None;
        let mut completions = Vec::new();
        loop {
            mem.begin_cycle_into(now, &mut completions);
            core.cycle(now, &completions, &mut mem, &mut trace);
            if let Some(error) = mem.integrity_error() {
                return Err(SimError::Integrity {
                    benchmark: benchmark.to_owned(),
                    error,
                });
            }
            // A commit burst can cross a begin and an end boundary in one
            // cycle; settle all crossed boundaries before continuing.
            loop {
                let committed = core.stats().committed;
                match (&open, next_mark) {
                    (Some(begin), Some(mark)) if committed >= mark.end_at => {
                        let measured = begin.delta_from(&StatsSnapshot::capture(&core, &mem));
                        parts.push(result_from(benchmark, label, hardware.clone(), &measured));
                        open = None;
                        next_mark = marks.next();
                    }
                    (None, Some(mark)) if committed >= mark.begin_at => {
                        open = Some(StatsSnapshot::capture(&core, &mem));
                        // `next_mark` stays: its end still needs closing.
                    }
                    _ => break,
                }
            }
            if core.drained() {
                break;
            }
            if now.raw() >= budget {
                return Err(SimError::Timeout {
                    benchmark: benchmark.to_owned(),
                    cycles: budget,
                });
            }
            now += 1;
        }
        // A truncated trace can drain the stretch before the last mark
        // closes; close it at whatever committed (combine weighs parts by
        // their actual instruction counts).
        if let Some(begin) = open {
            let measured = begin.delta_from(&StatsSnapshot::capture(&core, &mem));
            parts.push(result_from(benchmark, label, hardware.clone(), &measured));
        }
        // Quiesce before handing the system back to functional warm-up:
        // a fill still in flight would otherwise complete *after* the gap
        // has moved memory on, installing stale data (and its completion
        // token could collide with the next stretch's fresh core).
        while !mem.quiescent() {
            now += 1;
            mem.begin_cycle_into(now, &mut completions);
            if now.raw() >= budget {
                return Err(SimError::Timeout {
                    benchmark: benchmark.to_owned(),
                    cycles: budget,
                });
            }
        }
    }
    Ok(parts)
}

/// Shapes one measured counter bundle as a [`RunResult`].
fn result_from(
    benchmark: &'static str,
    mechanism: MechanismKind,
    hardware: HardwareBudget,
    measured: &StatsSnapshot,
) -> RunResult {
    RunResult {
        benchmark,
        mechanism,
        perf: PerfSummary {
            instructions: measured.core.committed,
            cycles: measured.core.cycles,
        },
        core: measured.core,
        l1d: measured.l1d,
        l1i: measured.l1i,
        l2: measured.l2,
        memory: measured.memory,
        mech_l1: measured.mech_l1,
        mech_l2: measured.mech_l2,
        queue_l1: measured.queue_l1,
        queue_l2: measured.queue_l2,
        hardware,
        sampling: None,
    }
}

/// The skip region warms caches and mechanism tables functionally (the
/// paper's long SimPoint traces run in steady state; see
/// [`MemorySystem::warm_inst`]) before the window is simulated in detail.
fn warm_loop(mem: &mut MemorySystem, stream: &mut InstStream, skip: u64) {
    for _ in 0..skip {
        let Some(inst) = stream.next() else { break };
        mem.warm_inst(inst.pc, inst.warm_mem_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(n: u64) -> SimOptions {
        SimOptions {
            window: TraceWindow::new(0, n),
            ..SimOptions::default()
        }
    }

    #[test]
    fn base_run_commits_every_instruction() {
        let r = run_one(
            &SystemConfig::baseline_constant_memory(),
            MechanismKind::Base,
            "crafty",
            &quick_opts(5_000),
        )
        .unwrap();
        assert_eq!(r.perf.instructions, 5_000);
        assert!(r.perf.cycles > 0);
        assert!(r.l1d.accesses() > 500, "crafty has memory traffic");
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let e = run_one(
            &SystemConfig::baseline(),
            MechanismKind::Base,
            "quake3",
            &quick_opts(100),
        )
        .unwrap_err();
        assert!(matches!(e, SimError::UnknownBenchmark(_)));
        assert!(e.to_string().contains("quake3"));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_one(
            &SystemConfig::baseline_constant_memory(),
            MechanismKind::Ghb,
            "swim",
            &quick_opts(4_000),
        )
        .unwrap();
        let b = run_one(
            &SystemConfig::baseline_constant_memory(),
            MechanismKind::Ghb,
            "swim",
            &quick_opts(4_000),
        )
        .unwrap();
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.l1d, b.l1d);
        assert_eq!(a.l2, b.l2);
    }

    #[test]
    fn every_mechanism_survives_a_smoke_run() {
        for kind in MechanismKind::study_set() {
            let r = run_one(
                &SystemConfig::baseline_constant_memory(),
                kind,
                "gzip",
                &quick_opts(3_000),
            )
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(r.perf.instructions, 3_000, "{kind:?}");
        }
    }

    #[test]
    fn sdram_memory_model_runs() {
        let r = run_one(
            &SystemConfig::baseline(),
            MechanismKind::Sp,
            "swim",
            &quick_opts(4_000),
        )
        .unwrap();
        assert!(r.memory.requests > 0, "swim must reach DRAM");
        assert!(r.memory.average_latency().unwrap() > 30.0);
    }

    #[test]
    fn window_skip_is_respected() {
        let opts = SimOptions {
            window: TraceWindow::new(5_000, 2_000),
            ..SimOptions::default()
        };
        let r = run_one(
            &SystemConfig::baseline_constant_memory(),
            MechanismKind::Base,
            "gcc",
            &opts,
        )
        .unwrap();
        assert_eq!(r.perf.instructions, 2_000);
    }
}
