//! Deterministic fault injection for the fault-tolerance test matrix.
//!
//! `MICROLIB_FAULT` arms one or more *fault specs*, each of the form
//!
//! ```text
//! <point>[@<qualifier>]:<nth>[:<kind>]
//! ```
//!
//! separated by commas. A spec fires when the named injection point is
//! hit for the `nth` time in this process (`nth = *` fires on **every**
//! hit — the "poison cell" mode). Kinds:
//!
//! | kind | effect at the injection point |
//! |---|---|
//! | `abort` (default) | `std::process::abort()` — an uncatchable `SIGABRT`, indistinguishable from a `SIGKILL`-class crash to the coordinator |
//! | `panic` | a Rust panic — exercises the in-process isolation layers (`catch_unwind` per experiment, lease abandonment on unwind) |
//! | `stall` | freezes lease heartbeats ([`stalled`]) and sleeps `MICROLIB_FAULT_STALL_MS` (default 600 000 ms), then aborts — exercises the stale-lease timeout → reclaim → kill path |
//! | `torn` | returned to the caller ([`injected`]), which simulates a torn write: truncated bytes placed at the *final* path, bypassing the atomic temp-file + rename protocol |
//!
//! Injection points wired through the codebase:
//!
//! | point | qualifier | where |
//! |---|---|---|
//! | `disk-write` | entry class (`memo`, `plan`, `warm`) | [`DiskCache::store`](crate::DiskCache::store) — `disk-write@memo` is the memo-journal write |
//! | `lease-write` | — | lease-file body write in [`LeaseManager`](crate::LeaseManager) |
//! | `cell` | `<benchmark>+<mechanism acronym>` (e.g. `swim+GHB`) | cell execution, after the lease claim and before the simulation |
//! | `worker-start` | worker id | `run_all` worker startup |
//!
//! Determinism knobs:
//!
//! - `MICROLIB_FAULT_WORKER=<id>` restricts the whole harness to the
//!   worker whose `MICROLIB_WORKER_ID` matches, so a multi-worker test
//!   can kill exactly one worker while the others stay healthy.
//! - A numeric `nth` fires **once globally**, not once per process: the
//!   first process to fire records a sentinel file under
//!   `$MICROLIB_FAULT_DIR` (default `$MICROLIB_CACHE_DIR/fault`), so a
//!   respawned worker does not re-crash at the same point and recovery
//!   can be observed. `nth = *` skips the sentinel and fires every time
//!   in every process — the semantics a poison cell needs.
//!
//! Everything here is inert (one relaxed atomic load per call site)
//! unless a spec is armed.

use microlib_model::codec::fnv1a;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// What an armed fault spec does when it fires (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `std::process::abort()` — a `SIGABRT` crash.
    Abort,
    /// A Rust panic (unwinds through the cell into the experiment catch).
    Panic,
    /// Freeze heartbeats, sleep `MICROLIB_FAULT_STALL_MS`, then abort.
    Stall,
    /// Returned to the write site, which places truncated bytes at the
    /// final path (simulating a torn, non-atomic write).
    Torn,
}

/// One armed `<point>[@qual]:<nth>[:<kind>]` spec.
#[derive(Debug)]
struct FaultSpec {
    point: String,
    qual: Option<String>,
    /// `None` = fire on every hit; `Some(n)` = fire on the `n`th hit of
    /// this process (guarded by the global one-shot sentinel).
    nth: Option<u64>,
    kind: FaultKind,
    hits: AtomicU64,
    /// The raw spec text (sentinel-file identity).
    text: String,
}

#[derive(Debug)]
struct Harness {
    specs: Vec<FaultSpec>,
    /// Sentinel directory for the fire-once-globally protocol.
    dir: Option<PathBuf>,
}

/// Set once a stall fault fires: the lease heartbeat thread checks this
/// and stops touching lease files, exactly as a frozen process would.
static STALLED: AtomicBool = AtomicBool::new(false);

/// `true` once a stall fault has fired in this process.
pub fn stalled() -> bool {
    STALLED.load(Ordering::Relaxed)
}

fn slot() -> &'static Mutex<Option<&'static Harness>> {
    static SLOT: OnceLock<Mutex<Option<&'static Harness>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(harness_from_env().map(|h| &*Box::leak(Box::new(h)))))
}

fn active() -> Option<&'static Harness> {
    *slot().lock().expect("fault harness lock")
}

/// Parses and arms `spec` in place of whatever `MICROLIB_FAULT` said —
/// the test hook (tests in one process cannot re-exec to change the
/// environment). Hit counters start at zero.
///
/// # Errors
///
/// Returns the parse failure for a malformed spec; the previously armed
/// harness stays in place.
pub fn arm(spec: &str) -> Result<(), String> {
    let harness = parse_harness(spec, fault_dir())?;
    *slot().lock().expect("fault harness lock") = Some(&*Box::leak(Box::new(harness)));
    Ok(())
}

/// Disarms every fault spec (test hook).
pub fn disarm() {
    *slot().lock().expect("fault harness lock") = None;
}

fn fault_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("MICROLIB_FAULT_DIR") {
        if !dir.is_empty() {
            return Some(PathBuf::from(dir));
        }
    }
    match std::env::var("MICROLIB_CACHE_DIR") {
        Ok(dir) if !matches!(dir.as_str(), "" | "off" | "0" | "false") => {
            Some(PathBuf::from(dir).join("fault"))
        }
        _ => None,
    }
}

fn harness_from_env() -> Option<Harness> {
    let spec = std::env::var("MICROLIB_FAULT").ok()?;
    if spec.is_empty() {
        return None;
    }
    // MICROLIB_FAULT_WORKER targets one worker; any other process
    // (including the coordinator, which has no worker id) stays clean.
    if let Ok(target) = std::env::var("MICROLIB_FAULT_WORKER") {
        if std::env::var("MICROLIB_WORKER_ID").as_deref() != Ok(target.as_str()) {
            return None;
        }
    }
    match parse_harness(&spec, fault_dir()) {
        Ok(h) => Some(h),
        Err(e) => {
            eprintln!("MICROLIB_FAULT={spec:?} ignored: {e}");
            None
        }
    }
}

fn parse_harness(spec: &str, dir: Option<PathBuf>) -> Result<Harness, String> {
    let mut specs = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        specs.push(parse_spec(part)?);
    }
    if specs.is_empty() {
        return Err("no fault specs".to_owned());
    }
    Ok(Harness { specs, dir })
}

fn parse_spec(part: &str) -> Result<FaultSpec, String> {
    let fields: Vec<&str> = part.split(':').collect();
    let (point_qual, nth, kind) = match fields.as_slice() {
        [p, n] => (*p, *n, "abort"),
        [p, n, k] => (*p, *n, *k),
        _ => return Err(format!("{part:?} is not <point>[@qual]:<nth>[:<kind>]")),
    };
    let (point, qual) = match point_qual.split_once('@') {
        Some((p, q)) => (p, Some(q.to_owned())),
        None => (point_qual, None),
    };
    if point.is_empty() {
        return Err(format!("{part:?} has an empty injection point"));
    }
    let nth = match nth {
        "*" => None,
        n => Some(
            n.parse::<u64>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("{part:?}: nth must be a positive integer or '*'"))?,
        ),
    };
    let kind = match kind {
        "abort" => FaultKind::Abort,
        "panic" => FaultKind::Panic,
        "stall" => FaultKind::Stall,
        "torn" | "torn-write" => FaultKind::Torn,
        other => return Err(format!("unknown fault kind {other:?}")),
    };
    Ok(FaultSpec {
        point: point.to_owned(),
        qual,
        nth,
        kind,
        hits: AtomicU64::new(0),
        text: part.to_owned(),
    })
}

impl Harness {
    /// Claims the global one-shot sentinel for `spec`. `true` means this
    /// process fires; `false` means another process (an earlier
    /// incarnation of a respawned worker, typically) already did.
    fn claim_once(&self, spec: &FaultSpec) -> bool {
        let Some(dir) = &self.dir else { return true };
        if std::fs::create_dir_all(dir).is_err() {
            return true;
        }
        let sentinel = dir.join(format!("{:016x}.fired", fnv1a(spec.text.as_bytes())));
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(sentinel)
        {
            Ok(_) => true,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => false,
            Err(_) => true,
        }
    }
}

/// Counts a hit on `(point, qual)` against every armed spec and returns
/// the kind of the first spec that fires, if any. Call sites that can
/// simulate a torn write use the returned [`FaultKind::Torn`] themselves
/// and [`execute`] everything else; sites with nothing to tear use
/// [`trigger`].
pub fn injected(point: &str, qual: &str) -> Option<FaultKind> {
    let harness = active()?;
    for spec in &harness.specs {
        if spec.point != point {
            continue;
        }
        if let Some(q) = &spec.qual {
            if q != qual {
                continue;
            }
        }
        let hit = spec.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fires = match spec.nth {
            None => true,
            Some(n) => hit == n && harness.claim_once(spec),
        };
        if fires {
            return Some(spec.kind);
        }
    }
    None
}

/// Performs a fired fault: abort, panic, or stall-then-abort.
/// [`FaultKind::Torn`] is a no-op here — only write sites can tear.
pub fn execute(kind: FaultKind, point: &str, qual: &str) {
    let at = if qual.is_empty() {
        point.to_owned()
    } else {
        format!("{point}@{qual}")
    };
    match kind {
        FaultKind::Torn => {}
        FaultKind::Panic => panic!("injected fault: panic at {at}"),
        FaultKind::Abort => {
            eprintln!("injected fault: abort at {at}");
            std::process::abort();
        }
        FaultKind::Stall => {
            eprintln!("injected fault: stall at {at} (heartbeats frozen)");
            STALLED.store(true, Ordering::Relaxed);
            let ms = std::env::var("MICROLIB_FAULT_STALL_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(600_000);
            std::thread::sleep(std::time::Duration::from_millis(ms));
            // A stalled worker that nobody killed must still not complete
            // the cell (the stall simulates a hang, not a delay).
            eprintln!("injected fault: stall at {at} expired; aborting");
            std::process::abort();
        }
    }
}

/// [`injected`] + [`execute`] for call sites with nothing to tear.
pub fn trigger(point: &str, qual: &str) {
    if let Some(kind) = injected(point, qual) {
        execute(kind, point, qual);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_parses() {
        let h = parse_harness("cell@swim+GHB:1:panic,disk-write@memo:3:torn", None).unwrap();
        assert_eq!(h.specs.len(), 2);
        assert_eq!(h.specs[0].point, "cell");
        assert_eq!(h.specs[0].qual.as_deref(), Some("swim+GHB"));
        assert_eq!(h.specs[0].nth, Some(1));
        assert_eq!(h.specs[0].kind, FaultKind::Panic);
        assert_eq!(h.specs[1].kind, FaultKind::Torn);

        let every = parse_harness("cell:*:abort", None).unwrap();
        assert_eq!(every.specs[0].nth, None);
        assert_eq!(every.specs[0].kind, FaultKind::Abort);
        assert_eq!(every.specs[0].qual, None);

        let default_kind = parse_harness("worker-start:2", None).unwrap();
        assert_eq!(default_kind.specs[0].kind, FaultKind::Abort);

        assert!(parse_harness("", None).is_err());
        assert!(parse_harness("cell", None).is_err());
        assert!(parse_harness("cell:0", None).is_err());
        assert!(parse_harness("cell:x", None).is_err());
        assert!(parse_harness("cell:1:explode", None).is_err());
        assert!(parse_harness("@q:1", None).is_err());
    }

    #[test]
    fn nth_counts_per_spec_and_qualifier_filters() {
        let h = parse_harness("p@a:2:torn", None).unwrap();
        let fire = |point: &str, qual: &str| -> Option<FaultKind> {
            for spec in &h.specs {
                if spec.point != point {
                    continue;
                }
                if let Some(q) = &spec.qual {
                    if q != qual {
                        continue;
                    }
                }
                let hit = spec.hits.fetch_add(1, Ordering::Relaxed) + 1;
                if spec.nth.is_none_or(|n| hit == n) {
                    return Some(spec.kind);
                }
            }
            None
        };
        assert_eq!(fire("p", "b"), None, "other qualifier never counts");
        assert_eq!(fire("p", "a"), None, "first hit: not yet");
        assert_eq!(fire("p", "a"), Some(FaultKind::Torn), "second hit fires");
        assert_eq!(fire("p", "a"), None, "numeric nth fires once");
    }

    #[test]
    fn one_shot_sentinel_claims_once() {
        let dir = std::env::temp_dir().join(format!("microlib-fault-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let h = parse_harness("p:1:abort", Some(dir.clone())).unwrap();
        assert!(h.claim_once(&h.specs[0]), "first claim wins");
        assert!(!h.claim_once(&h.specs[0]), "second claim is refused");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
