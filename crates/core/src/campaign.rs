//! The campaign engine: rayon-backed (benchmark × mechanism) sweeps with
//! deterministic result ordering, per-cell error capture and structured
//! progress reporting.
//!
//! A [`Campaign`] is the reusable form of the repo's central operation —
//! "run every cell of a sweep under one fixed methodology". Cells are
//! independent deterministic simulations, so they are distributed over a
//! work-stealing thread pool; results are keyed by cell index, which makes
//! the output **bit-identical for any worker count** (the paper's
//! repeatability requirement, enforced by `tests/campaign_smoke.rs`).
//!
//! Unlike [`run_matrix`](crate::run_matrix) (which stops at the first
//! failing cell), a campaign always runs every cell and records each
//! failure next to its coordinates, so one bad configuration no longer
//! aborts a 338-cell sweep.
//!
//! # Crash-safe resume
//!
//! A campaign over a store with an on-disk tier
//! ([`ArtifactStore::with_disk_cache`], or `MICROLIB_CACHE_DIR`) is
//! resumable: every finished cell is journaled to the disk memo the
//! moment it completes (one atomically written file per cell), so a
//! campaign killed at any point — `SIGKILL` included — restarts,
//! re-serves the journaled cells from disk and recomputes only the
//! missing ones, with bit-identical output. The same key mechanism makes
//! re-runs **incremental**: the content key covers the configuration,
//! window, seed and sampling mode, so a config tweak invalidates exactly
//! the cells it touches.

use crate::artifacts::ArtifactStore;
use crate::experiment::{ExperimentConfig, Matrix};
use crate::simulator::{run_one, run_one_with, RunResult, SimError};
use microlib_mech::MechanismKind;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Progress snapshot passed to the campaign's progress callback after each
/// cell finishes. Callbacks run concurrently on worker threads; completion
/// order is **not** deterministic (route this to stderr, never into result
/// tables).
#[derive(Clone, Copy, Debug)]
pub struct CellUpdate<'a> {
    /// Cells finished so far, including this one.
    pub completed: usize,
    /// Total cells in the campaign.
    pub total: usize,
    /// Benchmark of the finished cell.
    pub benchmark: &'a str,
    /// Mechanism of the finished cell.
    pub mechanism: MechanismKind,
    /// Whether the cell simulated cleanly.
    pub ok: bool,
    /// Wall-clock time the cell took.
    pub elapsed: Duration,
}

type ProgressFn = dyn Fn(&CellUpdate<'_>) + Send + Sync;

/// A configured, reusable (benchmark × mechanism) sweep.
///
/// # Examples
///
/// ```
/// use microlib::{Campaign, ExperimentConfig, SamplingMode};
/// use microlib_mech::MechanismKind;
/// use microlib_model::SystemConfig;
/// use microlib_trace::TraceWindow;
///
/// let cfg = ExperimentConfig {
///     system: SystemConfig::baseline_constant_memory(),
///     benchmarks: vec!["swim".into(), "gzip".into()],
///     mechanisms: vec![MechanismKind::Base, MechanismKind::Ghb],
///     window: TraceWindow::new(0, 2_000),
///     seed: 7,
///     threads: 2,
///     sampling: SamplingMode::Full,
/// };
/// let report = Campaign::new(cfg).run()?;
/// assert_eq!(report.cells().len(), 4);
/// assert_eq!(report.failure_count(), 0);
/// let matrix = report.into_matrix()?;
/// assert!(matrix.speedup("swim", MechanismKind::Ghb) > 0.0);
/// # Ok::<(), microlib::SimError>(())
/// ```
pub struct Campaign {
    config: ExperimentConfig,
    progress: Option<Box<ProgressFn>>,
    store: Option<Arc<ArtifactStore>>,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("config", &self.config)
            .field("progress", &self.progress.as_ref().map(|_| ".."))
            .field("store", &self.store)
            .finish()
    }
}

impl Campaign {
    /// Creates a campaign over `config`'s (benchmark × mechanism) grid.
    ///
    /// Unless `MICROLIB_ARTIFACTS` disables sharing, the campaign owns a
    /// fresh [`ArtifactStore`], so its cells share one trace buffer and
    /// one warm state per benchmark instead of re-deriving them per
    /// mechanism. Use [`with_store`](Campaign::with_store) to share
    /// artifacts *across* campaigns as well.
    pub fn new(config: ExperimentConfig) -> Self {
        let store = ArtifactStore::enabled_by_env().then(|| Arc::new(ArtifactStore::new()));
        Campaign {
            config,
            progress: None,
            store,
        }
    }

    /// Replaces the campaign's artifact store with a shared one (a
    /// [disabled](ArtifactStore::disabled) store turns sharing off and
    /// routes every cell through the legacy cold path).
    pub fn with_store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.store = store.is_enabled().then_some(store);
        self
    }

    /// Disables artifact sharing for this campaign: every cell generates
    /// its trace and runs its full warmup from scratch (the legacy path;
    /// results are identical either way).
    pub fn without_artifacts(mut self) -> Self {
        self.store = None;
        self
    }

    /// The campaign's artifact store, if sharing is enabled.
    pub fn artifact_store(&self) -> Option<&Arc<ArtifactStore>> {
        self.store.as_ref()
    }

    /// Installs a progress callback, invoked from worker threads after
    /// every cell.
    pub fn with_progress(
        mut self,
        progress: impl Fn(&CellUpdate<'_>) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Box::new(progress));
        self
    }

    /// The sweep configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Number of cells the sweep will run.
    pub fn cell_count(&self) -> usize {
        self.config.benchmarks.len() * self.config.mechanisms.len()
    }

    /// Worker threads the sweep will use (resolving `0` to the core count).
    pub fn effective_threads(&self) -> usize {
        if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.config.threads
        }
    }

    /// Runs every cell across the work-stealing pool.
    ///
    /// Cell results come back in row-major (benchmark-major,
    /// mechanism-minor) order regardless of the worker count or scheduling;
    /// per-cell simulation failures are *captured* in the report, not
    /// returned here.
    ///
    /// # Errors
    ///
    /// Only configuration-level failure (an invalid [`SystemConfig`]
    /// rejected before any cell runs) aborts the campaign.
    ///
    /// [`SystemConfig`]: microlib_model::SystemConfig
    pub fn run(&self) -> Result<CampaignReport, SimError> {
        self.config.system.validate()?;
        let jobs: Vec<(&str, MechanismKind)> = self
            .config
            .benchmarks
            .iter()
            .flat_map(|b| self.config.mechanisms.iter().map(move |m| (b.as_str(), *m)))
            .collect();
        let total = jobs.len();
        let opts = self.config.options();
        // One Arc'd configuration for the whole sweep: cells share it
        // instead of deep-cloning SystemConfig per run.
        let system = Arc::new(self.config.system.clone());

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.effective_threads().clamp(1, total.max(1)))
            .build()
            .expect("campaign thread pool");

        let completed = AtomicUsize::new(0);
        let cells: Vec<CampaignCell> = pool.install(|| {
            jobs.par_iter()
                .map(|&(benchmark, mechanism)| {
                    let started = Instant::now();
                    let outcome = match &self.store {
                        Some(store) => run_one_with(store, &system, mechanism, benchmark, &opts),
                        None => run_one(&self.config.system, mechanism, benchmark, &opts),
                    };
                    let elapsed = started.elapsed();
                    if let Some(progress) = &self.progress {
                        progress(&CellUpdate {
                            completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
                            total,
                            benchmark,
                            mechanism,
                            ok: outcome.is_ok(),
                            elapsed,
                        });
                    }
                    CampaignCell {
                        benchmark: benchmark.to_owned(),
                        mechanism,
                        elapsed,
                        outcome,
                    }
                })
                .collect()
        });

        Ok(CampaignReport {
            benchmarks: self.config.benchmarks.clone(),
            mechanisms: self.config.mechanisms.clone(),
            cells,
        })
    }
}

/// One finished sweep cell: its coordinates, its wall-clock cost and its
/// simulation outcome (captured, never propagated mid-sweep).
#[derive(Debug)]
pub struct CampaignCell {
    /// Benchmark simulated.
    pub benchmark: String,
    /// Mechanism simulated.
    pub mechanism: MechanismKind,
    /// Wall-clock time of the cell.
    pub elapsed: Duration,
    /// The measurements, or why the cell failed.
    pub outcome: Result<RunResult, SimError>,
}

/// Results of a full campaign, in deterministic row-major order.
#[derive(Debug)]
pub struct CampaignReport {
    benchmarks: Vec<String>,
    mechanisms: Vec<MechanismKind>,
    cells: Vec<CampaignCell>,
}

impl CampaignReport {
    /// Benchmarks in row order.
    pub fn benchmarks(&self) -> &[String] {
        &self.benchmarks
    }

    /// Mechanisms in column order.
    pub fn mechanisms(&self) -> &[MechanismKind] {
        &self.mechanisms
    }

    /// All cells, row-major (benchmark-major, mechanism-minor).
    pub fn cells(&self) -> &[CampaignCell] {
        &self.cells
    }

    /// The cells that failed, in deterministic order.
    pub fn failures(&self) -> impl Iterator<Item = &CampaignCell> {
        self.cells.iter().filter(|c| c.outcome.is_err())
    }

    /// Number of failed cells.
    pub fn failure_count(&self) -> usize {
        self.failures().count()
    }

    /// Sum of per-cell wall-clock times (the sweep's total CPU-side work;
    /// wall-clock of the whole sweep is roughly this over the thread
    /// count).
    pub fn total_cell_time(&self) -> Duration {
        self.cells.iter().map(|c| c.elapsed).sum()
    }

    /// Converts into the indexable [`Matrix`], surfacing the first failure
    /// (in deterministic cell order) if any cell failed.
    ///
    /// # Errors
    ///
    /// The first cell failure, if any.
    pub fn into_matrix(self) -> Result<Matrix, SimError> {
        let mut results = Vec::with_capacity(self.cells.len());
        for cell in self.cells {
            results.push(cell.outcome?);
        }
        Ok(Matrix::from_parts(
            self.benchmarks,
            self.mechanisms,
            results,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::SystemConfig;
    use microlib_trace::TraceWindow;
    use std::sync::Mutex;

    fn tiny_config(threads: usize) -> ExperimentConfig {
        ExperimentConfig {
            system: SystemConfig::baseline_constant_memory(),
            benchmarks: vec!["swim".into(), "gzip".into(), "mcf".into()],
            mechanisms: vec![MechanismKind::Base, MechanismKind::Tp],
            window: TraceWindow::new(0, 2_000),
            seed: 1,
            threads,
            sampling: crate::SamplingMode::Full,
        }
    }

    #[test]
    fn cells_come_back_in_row_major_order() {
        let report = Campaign::new(tiny_config(4)).run().unwrap();
        let coords: Vec<(String, MechanismKind)> = report
            .cells()
            .iter()
            .map(|c| (c.benchmark.clone(), c.mechanism))
            .collect();
        let expected: Vec<(String, MechanismKind)> = ["swim", "gzip", "mcf"]
            .iter()
            .flat_map(|b| {
                [MechanismKind::Base, MechanismKind::Tp]
                    .iter()
                    .map(|m| (b.to_string(), *m))
            })
            .collect();
        assert_eq!(coords, expected);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let serial = Campaign::new(tiny_config(1)).run().unwrap();
        let parallel = Campaign::new(tiny_config(8)).run().unwrap();
        for (a, b) in serial.cells().iter().zip(parallel.cells()) {
            assert_eq!(a.benchmark, b.benchmark);
            assert_eq!(a.mechanism, b.mechanism);
            let (ra, rb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            assert_eq!(ra.perf, rb.perf);
            assert_eq!(ra.l1d, rb.l1d);
            assert_eq!(ra.l2, rb.l2);
        }
    }

    #[test]
    fn bad_cell_is_captured_not_fatal() {
        let mut cfg = tiny_config(2);
        cfg.benchmarks = vec!["swim".into(), "quake3".into(), "gzip".into()];
        let report = Campaign::new(cfg).run().unwrap();
        assert_eq!(report.cells().len(), 6);
        assert_eq!(report.failure_count(), 2, "both quake3 cells fail");
        for cell in report.failures() {
            assert_eq!(cell.benchmark, "quake3");
            assert!(matches!(cell.outcome, Err(SimError::UnknownBenchmark(_))));
        }
        // The healthy cells still carry results.
        assert!(report.cells()[0].outcome.is_ok());
        // into_matrix surfaces the first failure deterministically.
        assert!(matches!(
            report.into_matrix(),
            Err(SimError::UnknownBenchmark(n)) if n == "quake3"
        ));
    }

    #[test]
    fn progress_reports_every_cell_once() {
        let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let report = Campaign::new(tiny_config(3))
            .with_progress(move |u| {
                sink.lock().unwrap().push((
                    u.benchmark.to_owned(),
                    u.mechanism,
                    u.completed,
                    u.total,
                ));
            })
            .run()
            .unwrap();
        let seen = seen.lock().unwrap().clone();
        assert_eq!(seen.len(), report.cells().len());
        assert!(seen
            .iter()
            .all(|(_, _, done, total)| { *total == 6 && (1..=6).contains(done) }));
        // Every coordinate reported exactly once.
        let mut coords: Vec<String> = seen.iter().map(|(b, m, _, _)| format!("{b}/{m}")).collect();
        coords.sort();
        coords.dedup();
        assert_eq!(coords.len(), 6);
    }

    #[test]
    fn config_error_aborts_before_any_cell() {
        let mut cfg = tiny_config(1);
        cfg.system.l1d.ports = 0;
        assert!(matches!(Campaign::new(cfg).run(), Err(SimError::Config(_))));
    }
}
