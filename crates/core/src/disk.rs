//! The content-addressed on-disk tier of the [`ArtifactStore`]: persisted
//! result memos, sampling plans and warm-state checkpoints, shared across
//! processes.
//!
//! Every entry is one file under `<root>/<class>/<fnv64(key)>.bin`,
//! written **atomically** (temp file + rename) so a crash mid-write — or
//! a `SIGKILL` mid-campaign — can never leave a half-entry that later
//! reads as valid. The container framing is
//!
//! ```text
//! magic "MLCH" | format version (u32) | build fingerprint (u64) | full key string | payload | fnv1a-64 checksum
//! ```
//!
//! with the key string and payload length-prefixed. Reads verify all five
//! in order; *any* failure (bad magic, version mismatch, another build's
//! fingerprint, short file, checksum mismatch, key collision) is treated
//! as a cache miss — corrupt entries are never trusted, the artifact is
//! recomputed, and the next write replaces the bad file. The embedded
//! full key makes filename hash collisions safe: an entry only serves the
//! exact content key it was written under. The build fingerprint (a hash
//! of the running executable) makes *code* changes safe: content keys
//! cover the simulation's inputs, not the simulator, so a rebuilt binary
//! deliberately starts cold rather than serving the old build's results.
//!
//! Because the filename and the embedded key both derive from the full
//! content key (configuration, window, seed, sampling mode, …), cache
//! invalidation is automatic and *incremental*: changing one experiment
//! knob re-keys only the cells it touches, and every other lookup keeps
//! hitting disk. Nothing is ever read stale — a stale entry is simply a
//! key nobody asks for anymore.
//!
//! [`ArtifactStore`]: crate::ArtifactStore

use microlib_model::codec::{fnv1a, CodecError, Decoder, Encoder};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Magic bytes opening every cache entry.
const MAGIC: [u8; 4] = *b"MLCH";

/// Fingerprint of the running executable (FNV-1a of its bytes), folded
/// into every entry: the content key covers *inputs* (configuration,
/// window, seed), not the simulator's code, so without it a rebuilt
/// binary with changed behavior would keep serving results computed by
/// the old code — a code change would look like a no-op. Any rebuild
/// starts the cache cold instead; stale entries are overwritten as the
/// new build recomputes them. Falls back to `0` when the executable
/// cannot be read (entries then still share within that degraded mode).
fn build_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        std::env::current_exe()
            .ok()
            .and_then(|exe| fs::read(exe).ok())
            .map(|bytes| fnv1a(&bytes))
            .unwrap_or(0)
    })
}

/// The on-disk format version. Bumping it invalidates every existing
/// entry (old files decode as [`CodecError::BadVersion`] and are
/// recomputed). Bump whenever any persisted type's encoding changes.
pub const FORMAT_VERSION: u32 = 1;

/// A directory of content-addressed cache entries (see the module docs).
///
/// All operations are best-effort: I/O errors on write are swallowed (the
/// cache is an accelerator, never a correctness dependency) and errors on
/// read are misses.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    tmp_seq: AtomicU64,
}

impl DiskCache {
    /// A cache rooted at `root` (created lazily on first write).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DiskCache {
            root: root.into(),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, class: &str, key: &str) -> PathBuf {
        self.root
            .join(class)
            .join(format!("{:016x}.bin", fnv1a(key.as_bytes())))
    }

    /// Loads the payload stored under `(class, key)`, or `None` if the
    /// entry is absent, unreadable, corrupt, from another format version,
    /// or written under a different (hash-colliding) key.
    pub fn load(&self, class: &str, key: &str) -> Option<Vec<u8>> {
        let bytes = fs::read(self.path_for(class, key)).ok()?;
        decode_entry(&bytes, key).ok()
    }

    /// Atomically stores `payload` under `(class, key)`, replacing any
    /// previous entry. Failures are silently ignored (the entry will be
    /// recomputed next time).
    pub fn store(&self, class: &str, key: &str, payload: &[u8]) {
        let path = self.path_for(class, key);
        let Some(dir) = path.parent() else { return };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        match crate::fault::injected("disk-write", class) {
            Some(crate::fault::FaultKind::Torn) => {
                // A torn write: half the framed entry lands at the FINAL
                // path (deliberately bypassing the atomic rename), which
                // readers must reject as a miss and a later write must
                // replace. This is the crash the temp+rename discipline
                // exists to prevent — injected here so tests can prove
                // the read path survives it anyway.
                let framed = encode_entry(key, payload);
                let _ = fs::write(&path, &framed[..framed.len() / 2]);
                return;
            }
            Some(kind) => crate::fault::execute(kind, "disk-write", class),
            None => {}
        }
        // Unique temp name per process *and* per write: concurrent
        // writers never clobber each other's partial file, and rename
        // makes publication atomic on the same filesystem.
        let tmp = dir.join(format!(
            ".tmp.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        // A failed write (e.g. ENOSPC after some bytes) or failed rename
        // must not strand the partial temp file in the cache directory.
        if fs::write(&tmp, encode_entry(key, payload)).is_err() || fs::rename(&tmp, &path).is_err()
        {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Fsyncs every entry of `class` and the class directory itself, so
    /// a clean worker exit guarantees its journaled memos survive a
    /// machine crash (rename gives atomicity, not durability). Best
    /// effort, like every other cache operation.
    pub fn sync_class(&self, class: &str) {
        let dir = self.root.join(class);
        let Ok(entries) = fs::read_dir(&dir) else {
            return;
        };
        for entry in entries.flatten() {
            if entry.path().extension().and_then(|e| e.to_str()) == Some("bin") {
                if let Ok(f) = fs::File::open(entry.path()) {
                    let _ = f.sync_all();
                }
            }
        }
        if let Ok(d) = fs::File::open(&dir) {
            let _ = d.sync_all();
        }
    }
}

/// Frames `payload` in the container format (see the module docs).
fn encode_entry(key: &str, payload: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(MAGIC[0]);
    e.put_u8(MAGIC[1]);
    e.put_u8(MAGIC[2]);
    e.put_u8(MAGIC[3]);
    e.put_u32(FORMAT_VERSION);
    e.put_u64(build_fingerprint());
    e.put_str(key);
    e.put_bytes(payload);
    let checksum = fnv1a(e.as_bytes());
    e.put_u64(checksum);
    e.into_bytes()
}

/// Unframes an entry, verifying magic, version, build fingerprint, key
/// and checksum.
fn decode_entry(bytes: &[u8], expected_key: &str) -> Result<Vec<u8>, CodecError> {
    let mut d = Decoder::new(bytes);
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = d.take_u8()?;
    }
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = d.take_u32()?;
    if version != FORMAT_VERSION {
        return Err(CodecError::BadVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    if d.take_u64()? != build_fingerprint() {
        return Err(CodecError::Invalid("written by a different build"));
    }
    if d.take_str()? != expected_key {
        return Err(CodecError::Invalid("key mismatch"));
    }
    let payload = d.take_bytes()?;
    let body_len = bytes.len().saturating_sub(8);
    let stored = d.take_u64()?;
    d.finish()?;
    if fnv1a(&bytes[..body_len]) != stored {
        return Err(CodecError::BadChecksum);
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("microlib-disk-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_replace() {
        let root = tmp_root("roundtrip");
        let cache = DiskCache::new(&root);
        assert!(cache.load("memo", "k1").is_none(), "empty cache misses");
        cache.store("memo", "k1", b"hello");
        assert_eq!(cache.load("memo", "k1").unwrap(), b"hello");
        cache.store("memo", "k1", b"replaced");
        assert_eq!(cache.load("memo", "k1").unwrap(), b"replaced");
        // Classes are separate namespaces.
        assert!(cache.load("plan", "k1").is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let root = tmp_root("truncated");
        let cache = DiskCache::new(&root);
        cache.store("memo", "k", b"some payload bytes");
        let path = cache.path_for("memo", "k");
        let full = fs::read(&path).unwrap();
        for cut in [0, 3, 7, full.len() / 2, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(cache.load("memo", "k").is_none(), "cut at {cut}");
        }
        // Restoring the full bytes hits again.
        fs::write(&path, &full).unwrap();
        assert_eq!(cache.load("memo", "k").unwrap(), b"some payload bytes");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flipped_bit_fails_the_checksum() {
        let root = tmp_root("checksum");
        let cache = DiskCache::new(&root);
        cache.store("memo", "k", b"payload under test");
        let path = cache.path_for("memo", "k");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load("memo", "k").is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_format_version_is_a_miss() {
        let root = tmp_root("version");
        let cache = DiskCache::new(&root);
        // Hand-frame an entry from a future format version, checksum and
        // all — only the version check can reject it.
        let mut e = Encoder::new();
        for b in MAGIC {
            e.put_u8(b);
        }
        e.put_u32(FORMAT_VERSION + 1);
        e.put_str("k");
        e.put_bytes(b"from the future");
        let checksum = fnv1a(e.as_bytes());
        e.put_u64(checksum);
        let path = cache.path_for("memo", "k");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, e.into_bytes()).unwrap();
        assert!(cache.load("memo", "k").is_none());
        assert!(matches!(
            decode_entry(&fs::read(&path).unwrap(), "k"),
            Err(CodecError::BadVersion { .. })
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn another_builds_fingerprint_is_a_miss() {
        let root = tmp_root("fingerprint");
        let cache = DiskCache::new(&root);
        // Hand-frame an otherwise-valid entry carrying a different build
        // fingerprint (≈ a cache left behind by an older binary).
        let mut e = Encoder::new();
        for b in MAGIC {
            e.put_u8(b);
        }
        e.put_u32(FORMAT_VERSION);
        e.put_u64(build_fingerprint().wrapping_add(1));
        e.put_str("k");
        e.put_bytes(b"stale build's result");
        let checksum = fnv1a(e.as_bytes());
        e.put_u64(checksum);
        let path = cache.path_for("memo", "k");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, e.into_bytes()).unwrap();
        assert!(cache.load("memo", "k").is_none());
        // A store by THIS build overwrites it and hits again.
        cache.store("memo", "k", b"fresh");
        assert_eq!(cache.load("memo", "k").unwrap(), b"fresh");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_magic_is_a_miss() {
        let root = tmp_root("magic");
        let cache = DiskCache::new(&root);
        let path = cache.path_for("memo", "k");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"GZIP....not a cache entry").unwrap();
        assert!(cache.load("memo", "k").is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn colliding_key_is_rejected_by_the_embedded_key() {
        let root = tmp_root("collision");
        let cache = DiskCache::new(&root);
        cache.store("memo", "key-a", b"a's payload");
        // Simulate a filename collision: copy a's file onto b's name.
        let a = cache.path_for("memo", "key-a");
        let b = cache.path_for("memo", "key-b");
        fs::copy(&a, &b).unwrap();
        assert!(cache.load("memo", "key-b").is_none(), "wrong key inside");
        assert_eq!(cache.load("memo", "key-a").unwrap(), b"a's payload");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn trailing_garbage_is_a_miss() {
        let root = tmp_root("trailing");
        let cache = DiskCache::new(&root);
        cache.store("memo", "k", b"payload");
        let path = cache.path_for("memo", "k");
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"extra");
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load("memo", "k").is_none());
        let _ = fs::remove_dir_all(&root);
    }
}
