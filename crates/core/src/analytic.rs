//! The analytic tier's runner: a functional-warm measurement pass that
//! feeds cache counters into the closed-form [`CpiModel`] — no detailed
//! out-of-order core, no timing simulation.
//!
//! The pass replays the window's instructions through the *storage* model
//! only ([`MemorySystem::warm_inst`]): caches, mechanism tables and the
//! functional memory evolve exactly as a detailed run would leave them,
//! prefetch requests are applied functionally (so prefetchers still
//! differentiate), and the measured miss counters drive the latency stack.
//! The result is deterministic, orders of magnitude cheaper than detailed
//! simulation, and deliberately approximate — the differential
//! inconsistency miner (`crates/miner`) exists to find the configurations
//! where this approximation and the detailed simulator part ways.

use crate::artifacts::ArtifactStore;
use crate::simulator::{SimError, SimOptions};
use microlib_cost::{CpiBreakdown, CpiCounters, CpiModel};
use microlib_mech::MechanismKind;
use microlib_mem::MemorySystem;
use microlib_model::{CacheStats, SystemConfig};
use microlib_trace::{benchmarks, TraceBuffer, Workload};
use std::sync::Arc;

/// One analytic-tier measurement: the counters observed over the window
/// and the CPI stack predicted from them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalyticResult {
    /// Benchmark name (static registry entry).
    pub benchmark: &'static str,
    /// Mechanism whose tables/prefetches shaped the counters.
    pub mechanism: MechanismKind,
    /// Counters measured over the simulated window.
    pub counters: CpiCounters,
    /// The predicted CPI stack.
    pub breakdown: CpiBreakdown,
}

impl AnalyticResult {
    /// The predicted cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.breakdown.total()
    }
}

/// Counter snapshot of the three caches (the analytic tier reads nothing
/// else).
#[derive(Clone, Copy, Default)]
struct WarmSnapshot {
    l1d: CacheStats,
    l1i: CacheStats,
    l2: CacheStats,
}

impl WarmSnapshot {
    fn capture(mem: &MemorySystem) -> Self {
        WarmSnapshot {
            l1d: mem.l1d_stats(),
            l1i: mem.l1i_stats(),
            l2: mem.l2_stats(),
        }
    }
}

/// Runs the analytic tier for one (configuration, mechanism, benchmark)
/// cell: functional warm over the skip prefix, a counter-measured
/// functional pass over the window (with prefetches applied), and the
/// [`CpiModel`] stack over the measured deltas.
///
/// The trace comes from `store`'s shared buffer when the store is enabled
/// (the same buffer detailed runs replay, so both tiers see an identical
/// instruction stream); a [disabled](ArtifactStore::disabled) store
/// generates the trace directly.
///
/// # Errors
///
/// [`SimError::UnknownBenchmark`] for unknown benchmarks,
/// [`SimError::Config`] for invalid configurations.
///
/// # Examples
///
/// ```
/// use microlib::{run_analytic, ArtifactStore, SimOptions};
/// use microlib_mech::MechanismKind;
/// use microlib_model::SystemConfig;
/// use microlib_trace::TraceWindow;
/// use std::sync::Arc;
///
/// let store = ArtifactStore::new();
/// let config = Arc::new(SystemConfig::baseline_constant_memory());
/// let opts = SimOptions {
///     window: TraceWindow::new(2_000, 4_000),
///     ..SimOptions::default()
/// };
/// let r = run_analytic(&store, &config, MechanismKind::Sp, "swim", &opts)?;
/// assert!(r.cpi() > 0.0);
/// # Ok::<(), microlib::SimError>(())
/// ```
pub fn run_analytic(
    store: &ArtifactStore,
    config: &Arc<SystemConfig>,
    mechanism: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<AnalyticResult, SimError> {
    let profile = benchmarks::by_name(benchmark)
        .ok_or_else(|| SimError::UnknownBenchmark(benchmark.to_owned()))?;
    let benchmark: &'static str = profile.name;

    let mut mem = MemorySystem::new(Arc::clone(config), vec![mechanism.build()])?;
    // The analytic tier never runs the detailed load path, so the value
    // integrity checker has nothing to verify.
    mem.set_check_values(false);

    let mut stream = if store.is_enabled() {
        let (workload, buffer) = store.trace(benchmark, opts.seed, opts.window.end())?;
        workload.initialize(mem.functional_mut());
        TraceBuffer::replay(&buffer)
    } else {
        let workload = Workload::shared(profile, opts.seed);
        workload.initialize(mem.functional_mut());
        workload.stream()
    };

    // Warm prefix: the plain drop-prefetch warm mode, matching the warm
    // phase every detailed run uses before its window.
    for _ in 0..opts.window.skip {
        let Some(inst) = stream.next() else { break };
        mem.warm_inst(inst.pc, inst.warm_mem_ref());
    }

    // Measured window: prefetches now apply functionally, so prefetching
    // mechanisms shape the miss counters the way a continuous detailed
    // run would let them.
    mem.set_warm_prefetch_fill(true);
    let before = WarmSnapshot::capture(&mem);
    let mut instructions = 0u64;
    for _ in 0..opts.window.simulate {
        let Some(inst) = stream.next() else { break };
        mem.warm_inst(inst.pc, inst.warm_mem_ref());
        instructions += 1;
    }
    let after = WarmSnapshot::capture(&mem);

    let counters = CpiCounters {
        instructions,
        data_accesses: (after.l1d.loads - before.l1d.loads)
            + (after.l1d.stores - before.l1d.stores),
        l1d_misses: after.l1d.misses - before.l1d.misses,
        sidecar_hits: after.l1d.sidecar_hits - before.l1d.sidecar_hits,
        l1i_misses: after.l1i.misses - before.l1i.misses,
        l2_misses: after.l2.misses - before.l2.misses,
    };
    let breakdown = CpiModel::for_config(config).predict(&counters);
    Ok(AnalyticResult {
        benchmark,
        mechanism,
        counters,
        breakdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_trace::TraceWindow;

    fn opts(skip: u64, sim: u64) -> SimOptions {
        SimOptions {
            window: TraceWindow::new(skip, sim),
            ..SimOptions::default()
        }
    }

    #[test]
    fn analytic_run_produces_positive_cpi() {
        let store = ArtifactStore::new();
        let config = Arc::new(SystemConfig::baseline_constant_memory());
        let r = run_analytic(
            &store,
            &config,
            MechanismKind::Base,
            "swim",
            &opts(1_000, 4_000),
        )
        .unwrap();
        assert_eq!(r.counters.instructions, 4_000);
        assert!(r.cpi() > 0.0);
        assert!(r.counters.data_accesses > 0, "swim streams data");
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let store = ArtifactStore::new();
        let config = Arc::new(SystemConfig::baseline());
        let e =
            run_analytic(&store, &config, MechanismKind::Base, "doom", &opts(0, 100)).unwrap_err();
        assert!(matches!(e, SimError::UnknownBenchmark(_)));
    }

    #[test]
    fn shared_and_disabled_store_agree_bit_for_bit() {
        let shared = ArtifactStore::new();
        let disabled = ArtifactStore::disabled();
        let config = Arc::new(SystemConfig::baseline_constant_memory());
        let a = run_analytic(
            &shared,
            &config,
            MechanismKind::Ghb,
            "mcf",
            &opts(2_000, 3_000),
        )
        .unwrap();
        let b = run_analytic(
            &disabled,
            &config,
            MechanismKind::Ghb,
            "mcf",
            &opts(2_000, 3_000),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn prefetcher_counters_differ_from_base() {
        let store = ArtifactStore::new();
        let config = Arc::new(SystemConfig::baseline_constant_memory());
        let base = run_analytic(
            &store,
            &config,
            MechanismKind::Base,
            "swim",
            &opts(2_000, 8_000),
        )
        .unwrap();
        let sp = run_analytic(
            &store,
            &config,
            MechanismKind::Sp,
            "swim",
            &opts(2_000, 8_000),
        )
        .unwrap();
        // The stride prefetcher must visibly change swim's miss profile:
        // functionally applied prefetches land in the L2, covering part of
        // the memory traffic.
        assert_ne!(base.counters, sp.counters);
        assert!(
            sp.counters.l2_misses < base.counters.l2_misses,
            "SP should cover strided L2 misses: {} vs {}",
            sp.counters.l2_misses,
            base.counters.l2_misses
        );
        assert!(sp.cpi() < base.cpi());
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let store = ArtifactStore::new();
        let config = Arc::new(SystemConfig::baseline());
        let a = run_analytic(
            &store,
            &config,
            MechanismKind::Tkvc,
            "gcc",
            &opts(1_500, 3_000),
        )
        .unwrap();
        let b = run_analytic(
            &store,
            &config,
            MechanismKind::Tkvc,
            "gcc",
            &opts(1_500, 3_000),
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cpi().to_bits(), b.cpi().to_bits());
    }
}
