//! Lease-based cell claiming for fault-tolerant multi-process campaigns.
//!
//! When several worker processes sweep the same battery over one shared
//! [`DiskCache`](crate::DiskCache), the memo journal already makes their
//! results *correct* (content-keyed, atomically written, first writer
//! wins). Leases make them *coordinated*: before simulating a memoized
//! cell, a worker claims `<cache>/lease/<fnv64(key)>.lease` with an
//! `O_EXCL` create — an atomic first-writer-wins claim on any local
//! filesystem — and everyone else waits for the memo instead of
//! duplicating the work.
//!
//! # The protocol
//!
//! - **Claim**: `create_new` the lease file; the winner writes its pid
//!   and worker id into the body and simulates the cell. Losers poll the
//!   memo (and the lease's freshness) and never compute.
//! - **Heartbeat**: the lease file's *mtime* is the liveness signal. A
//!   background thread touches every lease its process holds at a
//!   fraction of `MICROLIB_LEASE_TIMEOUT_MS` (default 30 000 ms). The
//!   body is diagnostics; mtime is the authority — a torn lease body
//!   heartbeats (and expires) exactly like a healthy one.
//! - **Reclaim**: a lease whose mtime is older than the timeout belongs
//!   to a dead (or stalled — a stall freezes the heartbeat thread) worker.
//!   A claimer *steals* it by renaming it to a unique name — exactly one
//!   racer wins the rename — and then re-claims from scratch.
//! - **Release**: completing a cell deletes the lease (and its attempt
//!   counter) the moment the memo is journaled; a clean worker exit
//!   sweeps any lease still owned by its pid ([`LeaseManager::release_owned`])
//!   so a warm re-run never waits out a stale-lease timeout.
//!
//! # Attempts and quarantine
//!
//! Every successful claim first bumps a sidecar attempt counter
//! (`<hash>.attempts`, atomic write); completing the cell deletes it.
//! The counter therefore counts *claims that never completed* — crashed
//! or abandoned-on-panic attempts. A claimer that finds the counter
//! already at `MICROLIB_CELL_RETRIES` (default 3) writes a quarantine
//! marker under `<cache>/quarantine/` instead of claiming: the cell has
//! killed that many consecutive workers and nobody should try again.
//! Quarantined cells surface as [`SimError::Quarantined`], which the
//! campaign engine records as an ordinary per-cell failure — the rest of
//! the battery completes and the final report (nonzero exit) lists each
//! quarantined cell with a minimized repro command. Deleting the
//! `quarantine/` directory clears the verdict.

use crate::simulator::SimError;
use microlib_model::codec::fnv1a;
use std::collections::HashSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, SystemTime};

/// Magic first line of lease files and quarantine markers.
const LEASE_HEADER: &str = "microlib-lease v1";
const QUARANTINE_HEADER: &str = "microlib-quarantine v1";

/// The battery-level scope label (the experiment currently running),
/// folded into quarantine markers so the repro command can name it.
static RUN_SCOPE: Mutex<Option<String>> = Mutex::new(None);

/// Records the experiment (or other scope) currently running in this
/// process; quarantine markers written while it is set include it in
/// their repro command (`run_all --only <scope>`). `run_all` sets this
/// before each experiment.
pub fn set_run_scope(name: &str) {
    *RUN_SCOPE.lock().expect("run scope lock") = Some(name.to_owned());
}

fn run_scope() -> Option<String> {
    RUN_SCOPE.lock().expect("run scope lock").clone()
}

fn env_ms(name: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(default),
    )
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(default)
}

#[derive(Debug)]
struct Inner {
    lease_dir: PathBuf,
    quarantine_dir: PathBuf,
    timeout: Duration,
    max_attempts: u32,
    worker: String,
    /// Lease files this process currently holds (heartbeat set).
    held: Mutex<HashSet<PathBuf>>,
    steal_seq: AtomicU64,
}

/// Coordinates cell claims across worker processes sharing one cache
/// directory (see the module docs).
#[derive(Clone, Debug)]
pub struct LeaseManager {
    inner: Arc<Inner>,
}

/// Outcome of a [`LeaseManager::claim`].
#[derive(Debug)]
pub enum Claim {
    /// This caller owns the cell; simulate it, then
    /// [`complete`](LeaseGuard::complete) (or drop / abandon) the guard.
    Acquired(LeaseGuard),
    /// A live worker holds the lease — wait for the memo and retry.
    Busy,
    /// The cell crashed `attempts` consecutive claimers and is
    /// quarantined; do not compute it.
    Quarantined {
        /// Crashed attempts recorded when the marker was written.
        attempts: u32,
    },
}

/// One quarantine marker, parsed for reporting.
#[derive(Clone, Debug)]
pub struct QuarantineReport {
    /// `"<benchmark> x <mechanism>"`.
    pub cell: String,
    /// Crashed attempts before quarantine.
    pub attempts: u32,
    /// Minimized repro command recorded at quarantine time.
    pub repro: String,
    /// Full content key of the poisoned cell.
    pub key: String,
}

impl LeaseManager {
    /// A manager over `<cache_root>/lease` + `<cache_root>/quarantine`,
    /// with the stale timeout and retry budget taken from
    /// `MICROLIB_LEASE_TIMEOUT_MS` / `MICROLIB_CELL_RETRIES`.
    pub fn new(cache_root: impl Into<PathBuf>) -> LeaseManager {
        Self::with_params(
            cache_root,
            env_ms("MICROLIB_LEASE_TIMEOUT_MS", 30_000),
            env_u32("MICROLIB_CELL_RETRIES", 3),
        )
    }

    /// [`new`](LeaseManager::new) with explicit staleness timeout and
    /// retry budget (the test hook; `max_attempts` is the K of
    /// "quarantine after K crashed claims").
    pub fn with_params(
        cache_root: impl Into<PathBuf>,
        timeout: Duration,
        max_attempts: u32,
    ) -> LeaseManager {
        let root = cache_root.into();
        let inner = Arc::new(Inner {
            lease_dir: root.join("lease"),
            quarantine_dir: root.join("quarantine"),
            timeout,
            max_attempts: max_attempts.max(1),
            worker: std::env::var("MICROLIB_WORKER_ID").unwrap_or_else(|_| "-".to_owned()),
            held: Mutex::new(HashSet::new()),
            steal_seq: AtomicU64::new(0),
        });
        // The heartbeat: touch every held lease well inside the timeout.
        // Holds only a Weak — the thread dies with the manager.
        let weak: Weak<Inner> = Arc::downgrade(&inner);
        let interval = (timeout / 4).clamp(Duration::from_millis(20), Duration::from_secs(2));
        std::thread::Builder::new()
            .name("microlib-lease-heartbeat".to_owned())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let Some(inner) = weak.upgrade() else { return };
                // A stalled process stops heartbeating — that is the
                // signal the stall fault exists to produce.
                if crate::fault::stalled() {
                    continue;
                }
                let held = inner.held.lock().expect("held leases lock").clone();
                for path in held {
                    if let Ok(f) = fs::OpenOptions::new().append(true).open(&path) {
                        let _ = f.set_modified(SystemTime::now());
                    }
                }
            })
            .expect("spawn lease heartbeat");
        LeaseManager { inner }
    }

    /// The stale-lease timeout this manager enforces.
    pub fn timeout(&self) -> Duration {
        self.inner.timeout
    }

    fn stem(key: &str) -> String {
        format!("{:016x}", fnv1a(key.as_bytes()))
    }

    fn lease_path(&self, key: &str) -> PathBuf {
        self.inner
            .lease_dir
            .join(format!("{}.lease", Self::stem(key)))
    }

    fn attempts_path(&self, key: &str) -> PathBuf {
        self.inner
            .lease_dir
            .join(format!("{}.attempts", Self::stem(key)))
    }

    fn quarantine_path(&self, key: &str) -> PathBuf {
        self.inner
            .quarantine_dir
            .join(format!("{}.txt", Self::stem(key)))
    }

    fn read_attempts(&self, key: &str) -> u32 {
        fs::read_to_string(self.attempts_path(key))
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .unwrap_or(0)
    }

    fn write_attempts(&self, key: &str, attempts: u32) {
        let path = self.attempts_path(key);
        let tmp = path.with_extension(format!("attempts.tmp.{}", std::process::id()));
        if fs::write(&tmp, format!("{attempts}\n")).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Crashed-attempt count for `key` if it is quarantined.
    pub fn quarantined(&self, key: &str) -> Option<u32> {
        let text = fs::read_to_string(self.quarantine_path(key)).ok()?;
        if !text.starts_with(QUARANTINE_HEADER) {
            return None;
        }
        Some(
            text.lines()
                .find_map(|l| l.strip_prefix("attempts "))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0),
        )
    }

    fn write_quarantine(&self, key: &str, cell: &str, attempts: u32, repro: &str) {
        if fs::create_dir_all(&self.inner.quarantine_dir).is_err() {
            return;
        }
        let only = run_scope()
            .map(|s| format!(" --only {s}"))
            .unwrap_or_default();
        let body = format!(
            "{QUARANTINE_HEADER}\ncell {cell}\nattempts {attempts}\nrepro {repro}{only}\nkey {key}\n"
        );
        // First marker wins; racing claimers would write the same verdict.
        if let Ok(mut f) = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(self.quarantine_path(key))
        {
            let _ = f.write_all(body.as_bytes());
            eprintln!("QUARANTINED {cell}: {attempts} consecutive crashed attempts");
        }
    }

    /// Attempts to claim the cell `key` (see the module docs for the
    /// protocol). `cell` is the human label (`"<benchmark> x <mech>"`)
    /// and `repro` the environment part of the repro command; both are
    /// only used if this claim ends in a quarantine verdict.
    pub fn claim(&self, key: &str, cell: &str, repro: &str) -> Claim {
        if let Some(attempts) = self.quarantined(key) {
            return Claim::Quarantined { attempts };
        }
        let path = self.lease_path(key);
        if fs::create_dir_all(&self.inner.lease_dir).is_err() {
            // Unwritable cache: degrade to uncoordinated (still correct —
            // the memo layer dedups by content).
            return Claim::Acquired(LeaseGuard {
                inner: Arc::clone(&self.inner),
                path,
                attempts_path: self.attempts_path(key),
                attempts: 1,
                done: true,
            });
        }
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    // Quarantine check under the lease: exactly one
                    // claimer reads-and-bumps at a time, so the counter
                    // cannot be bumped past the budget by a race.
                    let prior = self.read_attempts(key);
                    if prior >= self.inner.max_attempts {
                        drop(f);
                        let _ = fs::remove_file(&path);
                        self.write_quarantine(key, cell, prior, repro);
                        return Claim::Quarantined { attempts: prior };
                    }
                    self.write_attempts(key, prior + 1);
                    let body = format!(
                        "{LEASE_HEADER}\npid {}\nworker {}\nattempts {}\nkey {key}\n",
                        std::process::id(),
                        self.inner.worker,
                        prior + 1,
                    );
                    match crate::fault::injected("lease-write", "") {
                        Some(crate::fault::FaultKind::Torn) => {
                            // Torn lease body: half the bytes land. The
                            // mtime heartbeat still governs liveness, so
                            // a torn-but-held lease behaves normally and
                            // a torn-and-abandoned one expires like any
                            // stale lease.
                            let _ = f.write_all(&body.as_bytes()[..body.len() / 2]);
                        }
                        Some(kind) => crate::fault::execute(kind, "lease-write", ""),
                        None => {
                            let _ = f.write_all(body.as_bytes());
                        }
                    }
                    self.inner
                        .held
                        .lock()
                        .expect("held leases lock")
                        .insert(path.clone());
                    return Claim::Acquired(LeaseGuard {
                        inner: Arc::clone(&self.inner),
                        path,
                        attempts_path: self.attempts_path(key),
                        attempts: prior + 1,
                        done: false,
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let age = match fs::metadata(&path).and_then(|m| m.modified()) {
                        Ok(mtime) => SystemTime::now()
                            .duration_since(mtime)
                            .unwrap_or(Duration::ZERO),
                        // Vanished between create_new and stat: retry.
                        Err(_) => continue,
                    };
                    if age <= self.inner.timeout {
                        return Claim::Busy;
                    }
                    // Stale: the holder is dead or frozen. Exactly one
                    // racer wins the rename and proceeds to re-claim.
                    let steal = self.inner.lease_dir.join(format!(
                        "{}.steal.{}.{}",
                        Self::stem(key),
                        std::process::id(),
                        self.inner.steal_seq.fetch_add(1, Ordering::Relaxed),
                    ));
                    if fs::rename(&path, &steal).is_ok() {
                        let _ = fs::remove_file(&steal);
                        eprintln!(
                            "lease: reclaimed stale lease for {cell} ({}s old)",
                            age.as_secs()
                        );
                    }
                    // Winner and losers alike loop back to create_new.
                }
                Err(_) => {
                    // Unwritable lease dir: degrade to uncoordinated.
                    return Claim::Acquired(LeaseGuard {
                        inner: Arc::clone(&self.inner),
                        path,
                        attempts_path: self.attempts_path(key),
                        attempts: 1,
                        done: true,
                    });
                }
            }
        }
    }

    /// Deletes every lease owned by this process — the clean-exit sweep
    /// (guards already release per cell; this catches leaks) — and
    /// returns how many were released.
    pub fn release_owned(&self) -> usize {
        let mut released = 0;
        let held: Vec<PathBuf> = self
            .inner
            .held
            .lock()
            .expect("held leases lock")
            .drain()
            .collect();
        for path in held {
            if fs::remove_file(&path).is_ok() {
                released += 1;
            }
        }
        let me = format!("pid {}", std::process::id());
        let Ok(entries) = fs::read_dir(&self.inner.lease_dir) else {
            return released;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("lease") {
                continue;
            }
            let owned = fs::read_to_string(&path)
                .map(|text| text.lines().any(|l| l.trim() == me))
                .unwrap_or(false);
            if owned && fs::remove_file(&path).is_ok() {
                released += 1;
            }
        }
        released
    }

    /// `(pid, age)` of every lease under `cache_root` whose mtime is
    /// older than `timeout` — the coordinator's stalled-worker detector.
    pub fn stale_owners(cache_root: &Path, timeout: Duration) -> Vec<(u32, Duration)> {
        let mut stale = Vec::new();
        let Ok(entries) = fs::read_dir(cache_root.join("lease")) else {
            return stale;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("lease") {
                continue;
            }
            let Ok(mtime) = fs::metadata(&path).and_then(|m| m.modified()) else {
                continue;
            };
            let age = SystemTime::now()
                .duration_since(mtime)
                .unwrap_or(Duration::ZERO);
            if age <= timeout {
                continue;
            }
            let pid = fs::read_to_string(&path)
                .ok()
                .and_then(|text| {
                    text.lines()
                        .find_map(|l| l.strip_prefix("pid "))
                        .and_then(|v| v.trim().parse::<u32>().ok())
                })
                .unwrap_or(0);
            stale.push((pid, age));
        }
        stale
    }

    /// Every quarantine marker under `cache_root`, parsed for the final
    /// report.
    pub fn quarantine_reports(cache_root: &Path) -> Vec<QuarantineReport> {
        let mut reports = Vec::new();
        let Ok(entries) = fs::read_dir(cache_root.join("quarantine")) else {
            return reports;
        };
        for entry in entries.flatten() {
            let Ok(text) = fs::read_to_string(entry.path()) else {
                continue;
            };
            if !text.starts_with(QUARANTINE_HEADER) {
                continue;
            }
            let field = |name: &str| -> String {
                text.lines()
                    .find_map(|l| l.strip_prefix(name))
                    .map(|v| v.trim().to_owned())
                    .unwrap_or_default()
            };
            reports.push(QuarantineReport {
                cell: field("cell "),
                attempts: field("attempts ").parse().unwrap_or(0),
                repro: field("repro "),
                key: field("key "),
            });
        }
        reports.sort_by(|a, b| a.cell.cmp(&b.cell));
        reports
    }
}

/// Proof of a successful claim: the holder of the cell `key` behind it.
///
/// Dropping the guard **releases** the lease and its attempt counter —
/// right for completed cells and deterministic [`SimError`]s (a retry
/// would fail identically; no crash happened). A *crash-like* failure
/// must instead [`abandon`](LeaseGuard::abandon) the guard, which keeps
/// the attempt counter and expires the lease immediately, so the next
/// claimer retries — and the counter converges on quarantine.
#[derive(Debug)]
pub struct LeaseGuard {
    inner: Arc<Inner>,
    path: PathBuf,
    attempts_path: PathBuf,
    /// Which claim of the cell this is (1 = first ever / first since the
    /// last completion).
    pub attempts: u32,
    done: bool,
}

impl LeaseGuard {
    fn unregister(&self) {
        self.inner
            .held
            .lock()
            .expect("held leases lock")
            .remove(&self.path);
    }

    /// Releases the lease after the cell's memo was journaled: deletes
    /// the lease file and the attempt counter.
    pub fn complete(mut self) {
        self.done = true;
        self.unregister();
        let _ = fs::remove_file(&self.path);
        let _ = fs::remove_file(&self.attempts_path);
    }

    /// Abandons the claim after a crash-like failure (a panic unwinding
    /// through the cell): stops heartbeating and backdates the lease to
    /// the epoch so the next claimer reclaims it *immediately* — with
    /// the attempt counter intact, so repeated abandonment quarantines.
    pub fn abandon(mut self) {
        self.done = true;
        self.unregister();
        if let Ok(f) = fs::OpenOptions::new().append(true).open(&self.path) {
            let _ = f.set_modified(SystemTime::UNIX_EPOCH);
        }
    }
}

impl Drop for LeaseGuard {
    fn drop(&mut self) {
        if !self.done {
            self.done = true;
            self.unregister();
            let _ = fs::remove_file(&self.path);
            let _ = fs::remove_file(&self.attempts_path);
        }
    }
}

/// Builds the [`SimError::Quarantined`] for a quarantined claim.
pub(crate) fn quarantined_error(benchmark: &str, attempts: u32) -> SimError {
    SimError::Quarantined {
        benchmark: benchmark.to_owned(),
        attempts,
    }
}
