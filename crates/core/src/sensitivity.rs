//! Benchmark-sensitivity analysis (Fig 6) and sensitivity-selected
//! rankings (Fig 7).

use crate::experiment::Matrix;
use microlib_mech::MechanismKind;

/// Per-benchmark sensitivity: how much the mechanism choice matters.
#[derive(Clone, Debug)]
pub struct BenchmarkSensitivity {
    /// Benchmark name.
    pub benchmark: String,
    /// Highest speedup any mechanism achieves.
    pub max_speedup: f64,
    /// Lowest speedup (slowdowns < 1.0 included).
    pub min_speedup: f64,
}

impl BenchmarkSensitivity {
    /// The sensitivity span (max − min); Fig 6's y-axis spread.
    pub fn span(&self) -> f64 {
        self.max_speedup - self.min_speedup
    }
}

/// Computes the per-benchmark speedup spread across all non-Base
/// mechanisms, sorted most-sensitive first.
///
/// # Examples
///
/// ```no_run
/// use microlib::{benchmark_sensitivity, run_matrix, ExperimentConfig};
/// use microlib_trace::TraceWindow;
///
/// let cfg = ExperimentConfig::paper_baseline(TraceWindow::new(0, 50_000));
/// let matrix = run_matrix(&cfg)?;
/// for s in benchmark_sensitivity(&matrix) {
///     println!("{:10} span {:.3}", s.benchmark, s.span());
/// }
/// # Ok::<(), microlib::SimError>(())
/// ```
pub fn benchmark_sensitivity(matrix: &Matrix) -> Vec<BenchmarkSensitivity> {
    let mut rows: Vec<BenchmarkSensitivity> = matrix
        .benchmarks()
        .iter()
        .map(|b| {
            let speedups: Vec<f64> = matrix
                .mechanisms()
                .iter()
                .filter(|k| **k != MechanismKind::Base)
                .map(|k| matrix.speedup(b, *k))
                .collect();
            BenchmarkSensitivity {
                benchmark: b.clone(),
                max_speedup: speedups.iter().cloned().fold(f64::MIN, f64::max),
                min_speedup: speedups.iter().cloned().fold(f64::MAX, f64::min),
            }
        })
        .collect();
    // total_cmp keeps the comparator a genuine total order even if a
    // degenerate matrix yields a NaN span (same class of hazard as the
    // ranking sort — see rank_by_speedup).
    rows.sort_by(|a, b| b.span().total_cmp(&a.span()));
    rows
}

/// The `count` most and least sensitive benchmarks (Fig 7's high-6/low-6).
pub fn sensitivity_classes(matrix: &Matrix, count: usize) -> (Vec<String>, Vec<String>) {
    let rows = benchmark_sensitivity(matrix);
    let high = rows
        .iter()
        .take(count)
        .map(|r| r.benchmark.clone())
        .collect();
    let low = rows
        .iter()
        .rev()
        .take(count)
        .map(|r| r.benchmark.clone())
        .collect();
    (high, low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_matrix, ExperimentConfig};
    use microlib_model::SystemConfig;
    use microlib_trace::TraceWindow;

    fn matrix() -> Matrix {
        let cfg = ExperimentConfig {
            system: SystemConfig::baseline_constant_memory(),
            benchmarks: vec!["swim".into(), "crafty".into(), "mcf".into()],
            mechanisms: vec![
                MechanismKind::Base,
                MechanismKind::Sp,
                MechanismKind::Markov,
            ],
            window: TraceWindow::new(0, 3_000),
            seed: 5,
            threads: 0,
            sampling: crate::SamplingMode::Full,
        };
        run_matrix(&cfg).unwrap()
    }

    #[test]
    fn spans_are_nonnegative_and_sorted() {
        let rows = benchmark_sensitivity(&matrix());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.span() >= 0.0);
            assert!(r.max_speedup >= r.min_speedup);
        }
        for pair in rows.windows(2) {
            assert!(pair[0].span() >= pair[1].span());
        }
    }

    #[test]
    fn classes_partition_extremes() {
        let m = matrix();
        let (high, low) = sensitivity_classes(&m, 1);
        assert_eq!(high.len(), 1);
        assert_eq!(low.len(), 1);
        assert_ne!(high[0], low[0]);
    }

    #[test]
    fn streaming_beats_pointer_chase_in_sensitivity_to_stride_prefetch() {
        // swim (pure strided) must respond to SP far more than crafty
        // (tiny working set).
        let m = matrix();
        let swim = m.speedup("swim", MechanismKind::Sp);
        let crafty = m.speedup("crafty", MechanismKind::Sp);
        assert!(
            swim > crafty - 0.05,
            "swim {swim} should benefit at least as much as crafty {crafty}"
        );
    }
}
