//! The experiment matrix: the declarative description of a
//! (benchmark × mechanism) sweep and its indexable result grid. The sweep
//! itself runs on the campaign engine ([`crate::Campaign`]).

use crate::sampling::SamplingMode;
use crate::simulator::{RunResult, SimError, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::{benchmarks, TraceWindow};

/// Declarative description of a (benchmark × mechanism) sweep.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Shared system configuration.
    pub system: SystemConfig,
    /// Benchmarks to run (names from [`benchmarks::NAMES`]).
    pub benchmarks: Vec<String>,
    /// Mechanism configurations to compare.
    pub mechanisms: Vec<MechanismKind>,
    /// Trace window (identical across cells — the paper's fixed-trace
    /// methodology).
    pub window: TraceWindow,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Window coverage: full detailed simulation or SimPoint-sampled
    /// slices (identical across cells, like the window).
    pub sampling: SamplingMode,
}

impl ExperimentConfig {
    /// The paper's main setup: all 26 benchmarks × the 13 study
    /// configurations on the Table 1 baseline, fully simulated.
    pub fn paper_baseline(window: TraceWindow) -> Self {
        ExperimentConfig {
            system: SystemConfig::baseline(),
            benchmarks: benchmarks::NAMES.iter().map(|s| s.to_string()).collect(),
            mechanisms: MechanismKind::study_set().to_vec(),
            window,
            seed: 0xC0FFEE,
            threads: 0,
            sampling: SamplingMode::Full,
        }
    }

    pub(crate) fn options(&self) -> SimOptions {
        SimOptions {
            seed: self.seed,
            window: self.window,
            sampling: self.sampling,
            ..SimOptions::default()
        }
    }
}

/// Results of a full sweep, indexable by (benchmark, mechanism).
#[derive(Clone, Debug)]
pub struct Matrix {
    benchmarks: Vec<String>,
    mechanisms: Vec<MechanismKind>,
    results: Vec<RunResult>, // row-major: benchmark-major, mechanism-minor
}

impl Matrix {
    pub(crate) fn from_parts(
        benchmarks: Vec<String>,
        mechanisms: Vec<MechanismKind>,
        results: Vec<RunResult>,
    ) -> Self {
        debug_assert_eq!(results.len(), benchmarks.len() * mechanisms.len());
        Matrix {
            benchmarks,
            mechanisms,
            results,
        }
    }

    /// Benchmarks in row order.
    pub fn benchmarks(&self) -> &[String] {
        &self.benchmarks
    }

    /// Mechanisms in column order.
    pub fn mechanisms(&self) -> &[MechanismKind] {
        &self.mechanisms
    }

    /// The result cell for (benchmark, mechanism).
    ///
    /// # Panics
    ///
    /// Panics if either coordinate was not part of the sweep.
    pub fn result(&self, benchmark: &str, mechanism: MechanismKind) -> &RunResult {
        let b = self
            .benchmarks
            .iter()
            .position(|n| n == benchmark)
            .unwrap_or_else(|| panic!("benchmark {benchmark} not in sweep"));
        let m = self
            .mechanisms
            .iter()
            .position(|k| *k == mechanism)
            .unwrap_or_else(|| panic!("mechanism {mechanism} not in sweep"));
        &self.results[b * self.mechanisms.len() + m]
    }

    /// IPC speedup of `mechanism` on `benchmark` relative to the sweep's
    /// `Base` column.
    pub fn speedup(&self, benchmark: &str, mechanism: MechanismKind) -> f64 {
        let base = self.result(benchmark, MechanismKind::Base);
        self.result(benchmark, mechanism)
            .perf
            .speedup_over(&base.perf)
    }

    /// Per-benchmark speedups for one mechanism, in benchmark order.
    pub fn speedups_for(&self, mechanism: MechanismKind) -> Vec<f64> {
        self.benchmarks
            .iter()
            .map(|b| self.speedup(b, mechanism))
            .collect()
    }

    /// Mean speedup over a benchmark selection (the paper's per-figure
    /// averages).
    pub fn mean_speedup_over(&self, mechanism: MechanismKind, selection: &[&str]) -> f64 {
        let vals: Vec<f64> = selection
            .iter()
            .map(|b| self.speedup(b, mechanism))
            .collect();
        microlib_model::stats::mean(&vals).unwrap_or(0.0)
    }

    /// Mean speedup over all benchmarks in the sweep.
    pub fn mean_speedup(&self, mechanism: MechanismKind) -> f64 {
        let names: Vec<&str> = self.benchmarks.iter().map(String::as_str).collect();
        self.mean_speedup_over(mechanism, &names)
    }

    /// All cells (for custom aggregation).
    pub fn iter(&self) -> impl Iterator<Item = &RunResult> {
        self.results.iter()
    }
}

/// Runs the sweep on the campaign engine, parallelizing cells across the
/// work-stealing pool. This is the abort-on-failure convenience wrapper
/// around [`Campaign`](crate::Campaign); use the campaign API directly for
/// per-cell error capture and progress reporting.
///
/// # Errors
///
/// Returns the configuration error, or the first [`SimError`] any cell
/// produced (in deterministic row-major cell order).
///
/// # Examples
///
/// ```
/// use microlib::{run_matrix, ExperimentConfig, SamplingMode};
/// use microlib_mech::MechanismKind;
/// use microlib_model::SystemConfig;
/// use microlib_trace::TraceWindow;
///
/// let cfg = ExperimentConfig {
///     system: SystemConfig::baseline_constant_memory(),
///     benchmarks: vec!["swim".into(), "crafty".into()],
///     mechanisms: vec![MechanismKind::Base, MechanismKind::Sp],
///     window: TraceWindow::new(0, 2_000),
///     seed: 7,
///     threads: 2,
///     sampling: SamplingMode::Full,
/// };
/// let matrix = run_matrix(&cfg)?;
/// assert!(matrix.speedup("swim", MechanismKind::Sp) > 0.0);
/// # Ok::<(), microlib::SimError>(())
/// ```
pub fn run_matrix(config: &ExperimentConfig) -> Result<Matrix, SimError> {
    crate::Campaign::new(config.clone()).run()?.into_matrix()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            system: SystemConfig::baseline_constant_memory(),
            benchmarks: vec!["swim".into(), "gzip".into()],
            mechanisms: vec![MechanismKind::Base, MechanismKind::Tp],
            window: TraceWindow::new(0, 2_000),
            seed: 1,
            threads: 2,
            sampling: SamplingMode::Full,
        }
    }

    #[test]
    fn matrix_has_all_cells() {
        let m = run_matrix(&tiny_config()).unwrap();
        assert_eq!(m.benchmarks().len(), 2);
        assert_eq!(m.mechanisms().len(), 2);
        for b in ["swim", "gzip"] {
            for k in [MechanismKind::Base, MechanismKind::Tp] {
                let r = m.result(b, k);
                assert_eq!(r.benchmark, b);
                assert_eq!(r.mechanism, k);
                assert_eq!(r.perf.instructions, 2_000);
            }
        }
    }

    #[test]
    fn base_speedup_is_exactly_one() {
        let m = run_matrix(&tiny_config()).unwrap();
        for b in ["swim", "gzip"] {
            assert!((m.speedup(b, MechanismKind::Base) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mut cfg = tiny_config();
        cfg.threads = 1;
        let serial = run_matrix(&cfg).unwrap();
        cfg.threads = 4;
        let parallel = run_matrix(&cfg).unwrap();
        for b in ["swim", "gzip"] {
            for k in [MechanismKind::Base, MechanismKind::Tp] {
                assert_eq!(serial.result(b, k).perf, parallel.result(b, k).perf);
            }
        }
    }

    #[test]
    fn mean_speedup_over_selection() {
        let m = run_matrix(&tiny_config()).unwrap();
        let all = m.mean_speedup(MechanismKind::Tp);
        let swim_only = m.mean_speedup_over(MechanismKind::Tp, &["swim"]);
        assert!(all > 0.0 && swim_only > 0.0);
    }

    #[test]
    #[should_panic(expected = "not in sweep")]
    fn missing_cell_panics() {
        let m = run_matrix(&tiny_config()).unwrap();
        m.result("mcf", MechanismKind::Base);
    }
}
