//! The experiment matrix: (benchmark × mechanism) sweeps with a shared
//! configuration, parallelized across OS threads.

use crate::simulator::{run_one, RunResult, SimError, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::{benchmarks, TraceWindow};
use std::sync::Mutex;

/// Declarative description of a (benchmark × mechanism) sweep.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Shared system configuration.
    pub system: SystemConfig,
    /// Benchmarks to run (names from [`benchmarks::NAMES`]).
    pub benchmarks: Vec<String>,
    /// Mechanism configurations to compare.
    pub mechanisms: Vec<MechanismKind>,
    /// Trace window (identical across cells — the paper's fixed-trace
    /// methodology).
    pub window: TraceWindow,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl ExperimentConfig {
    /// The paper's main setup: all 26 benchmarks × the 13 study
    /// configurations on the Table 1 baseline.
    pub fn paper_baseline(window: TraceWindow) -> Self {
        ExperimentConfig {
            system: SystemConfig::baseline(),
            benchmarks: benchmarks::NAMES.iter().map(|s| s.to_string()).collect(),
            mechanisms: MechanismKind::study_set().to_vec(),
            window,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }

    fn options(&self) -> SimOptions {
        SimOptions {
            seed: self.seed,
            window: self.window,
            ..SimOptions::default()
        }
    }
}

/// Results of a full sweep, indexable by (benchmark, mechanism).
#[derive(Clone, Debug)]
pub struct Matrix {
    benchmarks: Vec<String>,
    mechanisms: Vec<MechanismKind>,
    results: Vec<RunResult>, // row-major: benchmark-major, mechanism-minor
}

impl Matrix {
    /// Benchmarks in row order.
    pub fn benchmarks(&self) -> &[String] {
        &self.benchmarks
    }

    /// Mechanisms in column order.
    pub fn mechanisms(&self) -> &[MechanismKind] {
        &self.mechanisms
    }

    /// The result cell for (benchmark, mechanism).
    ///
    /// # Panics
    ///
    /// Panics if either coordinate was not part of the sweep.
    pub fn result(&self, benchmark: &str, mechanism: MechanismKind) -> &RunResult {
        let b = self
            .benchmarks
            .iter()
            .position(|n| n == benchmark)
            .unwrap_or_else(|| panic!("benchmark {benchmark} not in sweep"));
        let m = self
            .mechanisms
            .iter()
            .position(|k| *k == mechanism)
            .unwrap_or_else(|| panic!("mechanism {mechanism} not in sweep"));
        &self.results[b * self.mechanisms.len() + m]
    }

    /// IPC speedup of `mechanism` on `benchmark` relative to the sweep's
    /// `Base` column.
    pub fn speedup(&self, benchmark: &str, mechanism: MechanismKind) -> f64 {
        let base = self.result(benchmark, MechanismKind::Base);
        self.result(benchmark, mechanism).perf.speedup_over(&base.perf)
    }

    /// Per-benchmark speedups for one mechanism, in benchmark order.
    pub fn speedups_for(&self, mechanism: MechanismKind) -> Vec<f64> {
        self.benchmarks
            .iter()
            .map(|b| self.speedup(b, mechanism))
            .collect()
    }

    /// Mean speedup over a benchmark selection (the paper's per-figure
    /// averages).
    pub fn mean_speedup_over(&self, mechanism: MechanismKind, selection: &[&str]) -> f64 {
        let vals: Vec<f64> = selection
            .iter()
            .map(|b| self.speedup(b, mechanism))
            .collect();
        microlib_model::stats::mean(&vals).unwrap_or(0.0)
    }

    /// Mean speedup over all benchmarks in the sweep.
    pub fn mean_speedup(&self, mechanism: MechanismKind) -> f64 {
        let names: Vec<&str> = self.benchmarks.iter().map(String::as_str).collect();
        self.mean_speedup_over(mechanism, &names)
    }

    /// All cells (for custom aggregation).
    pub fn iter(&self) -> impl Iterator<Item = &RunResult> {
        self.results.iter()
    }
}

/// Runs the sweep, parallelizing cells across threads.
///
/// # Errors
///
/// Returns the first [`SimError`] any cell produced.
///
/// # Examples
///
/// ```
/// use microlib::{run_matrix, ExperimentConfig};
/// use microlib_mech::MechanismKind;
/// use microlib_model::SystemConfig;
/// use microlib_trace::TraceWindow;
///
/// let cfg = ExperimentConfig {
///     system: SystemConfig::baseline_constant_memory(),
///     benchmarks: vec!["swim".into(), "crafty".into()],
///     mechanisms: vec![MechanismKind::Base, MechanismKind::Sp],
///     window: TraceWindow::new(0, 2_000),
///     seed: 7,
///     threads: 2,
/// };
/// let matrix = run_matrix(&cfg)?;
/// assert!(matrix.speedup("swim", MechanismKind::Sp) > 0.0);
/// # Ok::<(), microlib::SimError>(())
/// ```
pub fn run_matrix(config: &ExperimentConfig) -> Result<Matrix, SimError> {
    config.system.validate()?;
    let jobs: Vec<(usize, String, MechanismKind)> = config
        .benchmarks
        .iter()
        .enumerate()
        .flat_map(|(b, bench)| {
            config
                .mechanisms
                .iter()
                .enumerate()
                .map(move |(m, mech)| (b * config.mechanisms.len() + m, bench.clone(), *mech))
        })
        .collect();

    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        config.threads
    }
    .max(1);

    let slots: Mutex<Vec<Option<Result<RunResult, SimError>>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    let next: Mutex<usize> = Mutex::new(0);
    let opts = config.options();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                let job = {
                    let mut cursor = next.lock().expect("job cursor");
                    if *cursor >= jobs.len() {
                        break;
                    }
                    let j = jobs[*cursor].clone();
                    *cursor += 1;
                    j
                };
                let (slot, bench, mech) = job;
                let outcome = run_one(&config.system, mech, &bench, &opts);
                slots.lock().expect("result slots")[slot] = Some(outcome);
            });
        }
    });

    let mut results = Vec::with_capacity(jobs.len());
    for slot in slots.into_inner().expect("slots") {
        results.push(slot.expect("every job ran")?);
    }
    Ok(Matrix {
        benchmarks: config.benchmarks.clone(),
        mechanisms: config.mechanisms.clone(),
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            system: SystemConfig::baseline_constant_memory(),
            benchmarks: vec!["swim".into(), "gzip".into()],
            mechanisms: vec![MechanismKind::Base, MechanismKind::Tp],
            window: TraceWindow::new(0, 2_000),
            seed: 1,
            threads: 2,
        }
    }

    #[test]
    fn matrix_has_all_cells() {
        let m = run_matrix(&tiny_config()).unwrap();
        assert_eq!(m.benchmarks().len(), 2);
        assert_eq!(m.mechanisms().len(), 2);
        for b in ["swim", "gzip"] {
            for k in [MechanismKind::Base, MechanismKind::Tp] {
                let r = m.result(b, k);
                assert_eq!(r.benchmark, b);
                assert_eq!(r.mechanism, k);
                assert_eq!(r.perf.instructions, 2_000);
            }
        }
    }

    #[test]
    fn base_speedup_is_exactly_one() {
        let m = run_matrix(&tiny_config()).unwrap();
        for b in ["swim", "gzip"] {
            assert!((m.speedup(b, MechanismKind::Base) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mut cfg = tiny_config();
        cfg.threads = 1;
        let serial = run_matrix(&cfg).unwrap();
        cfg.threads = 4;
        let parallel = run_matrix(&cfg).unwrap();
        for b in ["swim", "gzip"] {
            for k in [MechanismKind::Base, MechanismKind::Tp] {
                assert_eq!(serial.result(b, k).perf, parallel.result(b, k).perf);
            }
        }
    }

    #[test]
    fn mean_speedup_over_selection() {
        let m = run_matrix(&tiny_config()).unwrap();
        let all = m.mean_speedup(MechanismKind::Tp);
        let swim_only = m.mean_speedup_over(MechanismKind::Tp, &["swim"]);
        assert!(all > 0.0 && swim_only > 0.0);
    }

    #[test]
    #[should_panic(expected = "not in sweep")]
    fn missing_cell_panics() {
        let m = run_matrix(&tiny_config()).unwrap();
        m.result("mcf", MechanismKind::Base);
    }
}
