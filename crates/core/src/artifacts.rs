//! The shared-artifact store: one home for everything a simulation run
//! needs that does not depend on the mechanism under study.
//!
//! A (benchmark × mechanism) campaign repeats several expensive,
//! mechanism-independent computations for every cell: generating the
//! instruction stream, replaying the functional warmup, choosing the
//! SimPoints of a sampled window, and — across experiments —
//! re-simulating cells another sweep already produced. An
//! [`ArtifactStore`] computes each once and shares it:
//!
//! - **traces** ([`TraceBuffer`]): keyed by (benchmark, seed), grown to
//!   the longest window requested so far, replayed by every cell through
//!   a zero-copy cursor;
//! - **warm states** ([`WarmState`]): keyed by (benchmark, seed, skip,
//!   warm start, configuration), the mechanism-independent cache/memory
//!   checkpoint plus the recorded mechanism-visible event log (see
//!   [`microlib_mem::capture_warm_state`]);
//! - **sampling plans** ([`SamplingPlan`]): keyed by (benchmark, seed,
//!   region, interval, cluster cap) — the BBV profile + clustering of a
//!   sampled window, computed once per benchmark and reused by every
//!   mechanism column;
//! - **cell results** ([`RunResult`]): memoized by full content key
//!   (benchmark, mechanism, seed, window, options — including the
//!   sampling mode — and configuration), so re-sweeps and overlapping
//!   experiments get identical cells for free.
//!
//! Sharing never changes results: replayed traces are
//! instruction-for-instruction identical to streamed ones, warm replay
//! reproduces the exact per-mechanism warm effects for mechanisms that
//! opt in (others keep the full warm path), and the memo key covers every
//! input a run depends on. `tests/artifacts.rs` asserts equality for all
//! thirteen study mechanisms, cold vs shared.
//!
//! The `MICROLIB_ARTIFACTS` environment variable (`off`/`0`/`false` to
//! disable) gates the default stores created by
//! [`Campaign`](crate::Campaign); a disabled store makes every run take
//! the legacy cold path.
//!
//! # The on-disk tier
//!
//! A store can additionally carry a persistent
//! [`DiskCache`](crate::DiskCache) tier
//! ([`with_disk_cache`](ArtifactStore::with_disk_cache), or
//! `MICROLIB_CACHE_DIR` via [`from_env`](ArtifactStore::from_env)).
//! Result memos, sampling plans and warm-state checkpoints are then
//! written through to disk as they are computed and served from disk by
//! later processes; traces stay memory-only (they regenerate faster than
//! they deserialize). Each memo file is written atomically the moment its
//! cell completes, so the memo directory doubles as a **resume journal**:
//! a killed campaign restarts and recomputes only the cells whose files
//! are missing. Corrupt, truncated or version-mismatched entries are
//! detected (checksums + embedded keys) and silently recomputed.

use crate::disk::DiskCache;
use crate::lease::{Claim, LeaseManager};
use crate::shard::ShardSpec;
use crate::simulator::{RunResult, SimError, SimOptions};
use microlib_mech::MechanismKind;
use microlib_mem::{capture_warm_state, WarmState};
use microlib_model::codec::{BinCodec, Decoder, Encoder};
use microlib_model::SystemConfig;
use microlib_trace::{benchmarks, SamplingPlan, TraceBuffer, TraceWindow, Workload};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A stable identity string for a [`SystemConfig`]: every field, via the
/// `Debug` rendering (exhaustive by construction — new fields show up
/// automatically). Used as the configuration component of warm-state and
/// memo keys.
pub fn config_key(config: &SystemConfig) -> String {
    format!("{config:?}")
}

/// Largest encoded warm state (bytes) the disk tier persists:
/// `MICROLIB_CACHE_WARM_MAX_MB` (MiB; `0` = unlimited), default 8 MiB.
/// Small-window warm states (the CI regime) fit comfortably; the
/// multi-ten-MB event logs of article-scale warm phases are cheaper to
/// re-record than to store per configuration.
fn warm_disk_cap() -> usize {
    match std::env::var("MICROLIB_CACHE_WARM_MAX_MB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(0) => usize::MAX,
        Some(mib) => mib.saturating_mul(1 << 20),
        None => 8 << 20,
    }
}

#[derive(Default)]
struct TraceSlot {
    state: Mutex<Option<(Arc<Workload>, Arc<TraceBuffer>)>>,
}

/// Capture gate for one warm key: the first requester is told to take
/// the (equally priced) cold path; the capture — which costs roughly one
/// extra warm phase plus the event log — only happens once a second
/// requester proves the state will actually be reused.
#[derive(Default)]
struct WarmGate {
    requests: u32,
    state: Option<Arc<WarmState>>,
    /// Approximate resident footprint of `state` (0 when empty), counted
    /// against the store-wide resident byte budget.
    bytes: usize,
    /// LRU stamp: the store-wide tick of the most recent request that
    /// touched this gate's state.
    last_used: u64,
}

/// One in-flight computation of a memoized cell in this process: the
/// first requester of a key becomes the *leader* and computes; concurrent
/// same-key requesters block on the condvar until the leader completes,
/// then re-probe the memo instead of re-simulating (single-flight).
#[derive(Default)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Deregisters a leader's flight and wakes its followers — on success,
/// failure, *and* panic (the guard drops during unwinding, so followers
/// never deadlock on a crashed leader).
struct FlightGuard<'a> {
    store: &'a ArtifactStore,
    key: &'a str,
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.store
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(self.key);
        *self.flight.done.lock().expect("flight lock") = true;
        self.flight.cv.notify_all();
    }
}
/// (benchmark, seed, skip, warm start, configuration key) — see
/// [`config_key`].
type WarmKey = (&'static str, u64, u64, u64, String);

/// One sampling plan per (benchmark, seed, region, interval, cluster
/// cap): the slot lock serializes concurrent same-key profiling requests
/// behind one builder.
#[derive(Default)]
struct PlanSlot {
    state: Mutex<Option<Arc<SamplingPlan>>>,
}
/// (benchmark, seed, region skip, region simulate, interval, max clusters).
type PlanKey = (&'static str, u64, u64, u64, u64, usize);

/// Hit/miss counters for the three artifact classes (observability; the
/// numbers are reported by `run_all` on stderr).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArtifactStoreStats {
    /// Trace requests served from a shared buffer.
    pub trace_hits: u64,
    /// Trace requests that had to build (or extend) a buffer.
    pub trace_misses: u64,
    /// Warm-state requests served from a shared checkpoint.
    pub warm_hits: u64,
    /// Warm-state requests that had to run a recording warm phase.
    pub warm_misses: u64,
    /// First-time warm-state requests declined (capture deferred until a
    /// second requester proves reuse).
    pub warm_declined: u64,
    /// Sampling-plan requests served from a shared plan.
    pub plan_hits: u64,
    /// Sampling-plan requests that had to profile and cluster.
    pub plan_misses: u64,
    /// Cell results served from the in-memory memo cache.
    pub memo_hits: u64,
    /// Cell results that had to simulate.
    pub memo_misses: u64,
    /// Cell results served from the on-disk tier (a RAM miss that decoded
    /// a valid disk entry; **not** counted in `memo_misses`).
    pub memo_disk_hits: u64,
    /// Sampling plans served from the on-disk tier.
    pub plan_disk_hits: u64,
    /// Warm states served from the on-disk tier.
    pub warm_disk_hits: u64,
    /// Cells this process claimed (and computed) through the lease layer.
    pub lease_claims: u64,
    /// Cells this process waited out instead of computing: another
    /// worker held the lease (or owned the shard) and the memo arrived.
    pub lease_waits: u64,
    /// Cells refused because they were quarantined (crashed too many
    /// consecutive claimers).
    pub cells_quarantined: u64,
    /// Same-key cell requests that arrived while the cell was already
    /// being computed in this process and waited for the leader's memo
    /// instead of re-simulating (in-process single-flight).
    pub memo_coalesced: u64,
    /// Resident warm states dropped to respect the byte cap set by
    /// [`ArtifactStore::set_warm_resident_cap`].
    pub warm_evictions: u64,
}

impl ArtifactStoreStats {
    /// Cells that had to simulate — zero means every requested cell came
    /// from memory or disk (the resume / warm-cache fast path).
    pub fn cells_recomputed(&self) -> u64 {
        self.memo_misses
    }
}

/// Shared, thread-safe store of mechanism-independent simulation
/// artifacts (see the module docs).
///
/// # Examples
///
/// ```
/// use microlib::{run_one_with, ArtifactStore, SimOptions};
/// use microlib_mech::MechanismKind;
/// use microlib_model::SystemConfig;
/// use microlib_trace::TraceWindow;
/// use std::sync::Arc;
///
/// let store = ArtifactStore::new();
/// let config = Arc::new(SystemConfig::baseline_constant_memory());
/// let opts = SimOptions {
///     window: TraceWindow::new(2_000, 1_000),
///     ..SimOptions::default()
/// };
/// let a = run_one_with(&store, &config, MechanismKind::Ghb, "swim", &opts)?;
/// // Identical request: served from the memo cache, same result.
/// let b = run_one_with(&store, &config, MechanismKind::Ghb, "swim", &opts)?;
/// assert_eq!(a.perf, b.perf);
/// assert_eq!(store.stats().memo_hits, 1);
/// # Ok::<(), microlib::SimError>(())
/// ```
pub struct ArtifactStore {
    enabled: bool,
    disk: Option<DiskCache>,
    lease: Option<LeaseManager>,
    shard: Option<ShardSpec>,
    steal_grace: Duration,
    traces: Mutex<HashMap<(&'static str, u64), Arc<TraceSlot>>>,
    warm: Mutex<HashMap<WarmKey, Arc<Mutex<WarmGate>>>>,
    plans: Mutex<HashMap<PlanKey, Arc<PlanSlot>>>,
    memo: Mutex<HashMap<String, Arc<RunResult>>>,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    /// Resident warm-state budget in bytes (`u64::MAX` = unbounded).
    warm_cap: AtomicU64,
    /// Approximate bytes currently held by resident warm states.
    warm_bytes: AtomicU64,
    /// Monotone tick stamping warm-state recency for LRU eviction.
    warm_tick: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    warm_hits: AtomicU64,
    warm_misses: AtomicU64,
    warm_declined: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    memo_disk_hits: AtomicU64,
    plan_disk_hits: AtomicU64,
    warm_disk_hits: AtomicU64,
    lease_claims: AtomicU64,
    lease_waits: AtomicU64,
    cells_quarantined: AtomicU64,
    memo_coalesced: AtomicU64,
    warm_evictions: AtomicU64,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("enabled", &self.enabled)
            .field("disk", &self.disk.as_ref().map(|d| d.root()))
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for ArtifactStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtifactStore {
    fn with_enabled(enabled: bool) -> Self {
        ArtifactStore {
            enabled,
            disk: None,
            lease: None,
            shard: None,
            steal_grace: Duration::from_millis(
                std::env::var("MICROLIB_STEAL_GRACE_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1_500),
            ),
            traces: Mutex::new(HashMap::new()),
            warm: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
            memo: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            warm_cap: AtomicU64::new(u64::MAX),
            warm_bytes: AtomicU64::new(0),
            warm_tick: AtomicU64::new(0),
            trace_hits: AtomicU64::new(0),
            trace_misses: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            warm_misses: AtomicU64::new(0),
            warm_declined: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            memo_disk_hits: AtomicU64::new(0),
            plan_disk_hits: AtomicU64::new(0),
            warm_disk_hits: AtomicU64::new(0),
            lease_claims: AtomicU64::new(0),
            lease_waits: AtomicU64::new(0),
            cells_quarantined: AtomicU64::new(0),
            memo_coalesced: AtomicU64::new(0),
            warm_evictions: AtomicU64::new(0),
        }
    }

    /// An enabled, empty, memory-only store.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A disabled store: every consumer falls back to the legacy cold
    /// path (fresh generation, full per-mechanism warmup, no memo).
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// Attaches a persistent on-disk tier rooted at `dir`: result memos,
    /// sampling plans and warm states are written through as they are
    /// computed and served from disk across processes (see the module
    /// docs). No effect on a [disabled](ArtifactStore::disabled) store.
    pub fn with_disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk = self.enabled.then(|| DiskCache::new(dir));
        self
    }

    /// The on-disk tier, if one is attached.
    pub fn disk_cache(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Attaches a [`LeaseManager`]: memoized cells are then claimed
    /// through first-writer-wins lease files before simulation, so
    /// concurrent processes sharing the disk tier each compute a cell at
    /// most once (see the [`crate::LeaseManager`] docs for the protocol,
    /// crash recovery and quarantine). Only meaningful together with a
    /// disk tier rooted at the same directory.
    pub fn with_lease_manager(mut self, lease: LeaseManager) -> Self {
        self.lease = self.enabled.then_some(lease);
        self
    }

    /// Sets this process's shard: memo misses on cells *another* shard
    /// owns first wait out a grace period (`MICROLIB_STEAL_GRACE_MS`,
    /// default 1500 ms) for the owner's memo before claiming the cell
    /// themselves — the partition steers work while the lease layer
    /// keeps it correct and live (see [`ShardSpec`]).
    pub fn with_shard(mut self, shard: ShardSpec) -> Self {
        self.shard = Some(shard);
        self
    }

    /// A store honouring the `MICROLIB_ARTIFACTS` environment variable
    /// (enabled unless it is `off`, `0` or `false`), with an on-disk tier
    /// at `MICROLIB_CACHE_DIR` when that is set to a path (unset, empty,
    /// `off`, `0` and `false` mean memory-only). When the disk tier is
    /// active and multi-process coordination is requested —
    /// `MICROLIB_SHARD` is set, or `MICROLIB_LEASE` is `on`/`1`/`true` —
    /// the store also claims cells through lease files in the cache dir.
    pub fn from_env() -> Self {
        let mut store = Self::with_enabled(Self::enabled_by_env());
        if let Some(dir) = Self::cache_dir_from_env() {
            store = store.with_disk_cache(dir.clone());
            let shard = ShardSpec::from_env();
            let lease_on = matches!(
                std::env::var("MICROLIB_LEASE").as_deref(),
                Ok("on" | "1" | "true")
            );
            if store.disk.is_some() && (shard.is_some() || lease_on) {
                store = store.with_lease_manager(LeaseManager::new(dir));
                if let Some(shard) = shard {
                    store = store.with_shard(shard);
                }
            }
        }
        store
    }

    /// The disk-cache directory `MICROLIB_CACHE_DIR` requests, if any.
    pub fn cache_dir_from_env() -> Option<PathBuf> {
        match std::env::var("MICROLIB_CACHE_DIR") {
            Ok(dir) if !matches!(dir.as_str(), "" | "off" | "0" | "false") => {
                Some(PathBuf::from(dir))
            }
            _ => None,
        }
    }

    /// Whether `MICROLIB_ARTIFACTS` currently allows artifact sharing.
    pub fn enabled_by_env() -> bool {
        !matches!(
            std::env::var("MICROLIB_ARTIFACTS").as_deref(),
            Ok("off" | "0" | "false")
        )
    }

    /// Whether this store shares artifacts (`false` for
    /// [`disabled`](ArtifactStore::disabled) stores).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Hit/miss counters accumulated so far.
    pub fn stats(&self) -> ArtifactStoreStats {
        ArtifactStoreStats {
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            warm_misses: self.warm_misses.load(Ordering::Relaxed),
            warm_declined: self.warm_declined.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            memo_disk_hits: self.memo_disk_hits.load(Ordering::Relaxed),
            plan_disk_hits: self.plan_disk_hits.load(Ordering::Relaxed),
            warm_disk_hits: self.warm_disk_hits.load(Ordering::Relaxed),
            lease_claims: self.lease_claims.load(Ordering::Relaxed),
            lease_waits: self.lease_waits.load(Ordering::Relaxed),
            cells_quarantined: self.cells_quarantined.load(Ordering::Relaxed),
            memo_coalesced: self.memo_coalesced.load(Ordering::Relaxed),
            warm_evictions: self.warm_evictions.load(Ordering::Relaxed),
        }
    }

    /// The shared workload and trace buffer for `(benchmark, seed)`,
    /// covering at least `min_len` instructions. The buffer is built on
    /// first use and regenerated (longer) when a caller needs more than
    /// any previous one; existing replay cursors keep their `Arc` to the
    /// old buffer and are unaffected.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownBenchmark`] if `benchmark` is not in the
    /// registry.
    pub fn trace(
        &self,
        benchmark: &str,
        seed: u64,
        min_len: u64,
    ) -> Result<(Arc<Workload>, Arc<TraceBuffer>), SimError> {
        let profile = benchmarks::by_name(benchmark)
            .ok_or_else(|| SimError::UnknownBenchmark(benchmark.to_owned()))?;
        let slot = {
            let mut traces = self.traces.lock().expect("trace map lock");
            Arc::clone(traces.entry((profile.name, seed)).or_default())
        };
        // Per-slot lock: concurrent requests for the same (benchmark,
        // seed) wait for one builder instead of duplicating the capture;
        // requests for other benchmarks proceed in parallel.
        let mut state = slot.state.lock().expect("trace slot lock");
        if let Some((workload, buffer)) = state.as_ref() {
            if buffer.len() >= min_len {
                self.trace_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(workload), Arc::clone(buffer)));
            }
        }
        self.trace_misses.fetch_add(1, Ordering::Relaxed);
        let workload = match state.take() {
            Some((workload, _short)) => workload,
            None => Arc::new(Workload::new(profile, seed)),
        };
        let buffer = Arc::new(TraceBuffer::capture(&workload, min_len));
        *state = Some((Arc::clone(&workload), Arc::clone(&buffer)));
        Ok((workload, buffer))
    }

    /// The shared warm state for `(benchmark, seed, skip, warm_start)`
    /// under `config`: the mechanism-independent checkpoint plus the
    /// recorded warm event log. `warm_start` is `0` for full-prefix warm
    /// (every full-mode run); sampled runs with a bounded warm-up budget
    /// key their truncated warm phases separately.
    ///
    /// Returns `Ok(None)` for the *first* request of a key — capturing
    /// costs roughly one extra warm phase, so the store only records once
    /// a second requester proves the state is reused; the first caller
    /// runs its (equally priced) full warm phase instead. From the second
    /// request on, the state is captured once and served shared.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownBenchmark`] for unknown benchmarks,
    /// [`SimError::Config`] for invalid configurations.
    pub fn warm_state(
        &self,
        benchmark: &str,
        seed: u64,
        skip: u64,
        warm_start: u64,
        config: &Arc<SystemConfig>,
    ) -> Result<Option<Arc<WarmState>>, SimError> {
        config.validate()?;
        let warm_start = warm_start.min(skip);
        let (workload, buffer) = self.trace(benchmark, seed, skip)?;
        let ckey = config_key(config);
        let gate = {
            let mut warm = self.warm.lock().expect("warm map lock");
            Arc::clone(
                warm.entry((buffer.benchmark(), seed, skip, warm_start, ckey.clone()))
                    .or_default(),
            )
        };
        // Per-key lock: a concurrent same-key requester waits for the
        // capture instead of duplicating it.
        let mut gate = gate.lock().expect("warm gate lock");
        if let Some(state) = gate.state.clone() {
            self.warm_hits.fetch_add(1, Ordering::Relaxed);
            gate.last_used = self.warm_tick.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(state));
        }
        // The disk key is only built when a disk tier exists: most warm
        // requests resolve in memory (hit, or first-requester decline), and
        // the formatting must cost nothing there — same lazy discipline as
        // `trace_event`.
        let disk_key = self.disk.as_ref().map(|_| {
            format!(
                "{}|seed={:#x}|skip={skip}|start={warm_start}|{ckey}",
                buffer.benchmark(),
                seed,
            )
        });
        // A disk hit short-circuits the capture gate entirely: the state
        // was already earned by an earlier process. Warm entries encode
        // the functional memory as a delta against the workload's initial
        // image, which is regenerated here (cheap: the workload keeps a
        // prebuilt copy-on-write image).
        if let Some(payload) = self
            .disk
            .as_ref()
            .zip(disk_key.as_deref())
            .and_then(|(d, key)| d.load("warm", key))
        {
            let mut base = microlib_mem::FunctionalMemory::new();
            workload.initialize(&mut base);
            let mut d = Decoder::new(&payload);
            if let Ok(state) =
                WarmState::decode(&mut d, config, &base).and_then(|s| d.finish().map(|_| s))
            {
                self.warm_disk_hits.fetch_add(1, Ordering::Relaxed);
                let state = Arc::new(state);
                self.warm_install(&mut gate, &state);
                drop(gate);
                self.enforce_warm_cap();
                return Ok(Some(state));
            }
        }
        gate.requests += 1;
        if gate.requests < 2 {
            self.warm_declined.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        self.warm_misses.fetch_add(1, Ordering::Relaxed);
        let insts = TraceBuffer::replay_from(&buffer, warm_start)
            .take((skip - warm_start) as usize)
            .map(|inst| (inst.pc, inst.warm_mem_ref()));
        let state = Arc::new(
            capture_warm_state(Arc::clone(config), |fm| workload.initialize(fm), insts)
                .expect("configuration validated above"),
        );
        if let Some((disk, key)) = self.disk.as_ref().zip(disk_key.as_deref()) {
            let mut base = microlib_mem::FunctionalMemory::new();
            workload.initialize(&mut base);
            let mut e = Encoder::new();
            state.encode(&base, &mut e);
            // Long warm phases produce multi-ten-MB event logs whose disk
            // round trip is worth less than the space: persist only
            // entries under the cap (memos and plans — the artifacts that
            // make re-runs incremental — are never capped).
            if e.as_bytes().len() <= warm_disk_cap() {
                disk.store("warm", key, e.as_bytes());
            }
        }
        self.warm_install(&mut gate, &state);
        drop(gate);
        self.enforce_warm_cap();
        Ok(Some(state))
    }

    /// Records `state` into its gate and charges its footprint against
    /// the resident byte budget. Callers drop the gate lock and call
    /// [`enforce_warm_cap`](Self::enforce_warm_cap) afterwards.
    fn warm_install(&self, gate: &mut WarmGate, state: &Arc<WarmState>) {
        gate.bytes = state.resident_bytes();
        gate.last_used = self.warm_tick.fetch_add(1, Ordering::Relaxed);
        gate.state = Some(Arc::clone(state));
        self.warm_bytes
            .fetch_add(gate.bytes as u64, Ordering::Relaxed);
    }

    /// Caps the bytes of warm states kept resident between requests:
    /// least-recently-used states are dropped (their capture gates stay
    /// armed, so a later request re-captures immediately) until the
    /// estimate fits. `u64::MAX` — the default — disables eviction.
    /// Long-lived processes (the `microlib-serve` daemon sets this from
    /// `MICROLIB_SERVE_RESIDENT_MB`) use it to bound steady-state RSS.
    pub fn set_warm_resident_cap(&self, bytes: u64) {
        self.warm_cap.store(bytes, Ordering::Relaxed);
        self.enforce_warm_cap();
    }

    /// Approximate bytes currently held by resident warm states.
    pub fn warm_resident_bytes(&self) -> u64 {
        self.warm_bytes.load(Ordering::Relaxed)
    }

    /// Evicts least-recently-used warm states until the resident estimate
    /// fits the cap. Gates locked by a concurrent requester are skipped
    /// via `try_lock` — they are in active use (the opposite of an LRU
    /// victim), and skipping them keeps this free of lock-order cycles
    /// with `warm_state`, which calls in while holding its own gate.
    fn enforce_warm_cap(&self) {
        let cap = self.warm_cap.load(Ordering::Relaxed);
        if self.warm_bytes.load(Ordering::Relaxed) <= cap {
            return;
        }
        let gates: Vec<Arc<Mutex<WarmGate>>> = {
            let warm = self.warm.lock().expect("warm map lock");
            warm.values().cloned().collect()
        };
        let mut candidates: Vec<(u64, Arc<Mutex<WarmGate>>)> = Vec::new();
        for gate in gates {
            if let Ok(g) = gate.try_lock() {
                if g.state.is_some() {
                    candidates.push((g.last_used, Arc::clone(&gate)));
                }
            }
        }
        candidates.sort_by_key(|(last_used, _)| *last_used);
        for (_, gate) in candidates {
            if self.warm_bytes.load(Ordering::Relaxed) <= cap {
                break;
            }
            if let Ok(mut g) = gate.try_lock() {
                if g.state.take().is_some() {
                    self.warm_bytes.fetch_sub(g.bytes as u64, Ordering::Relaxed);
                    g.bytes = 0;
                    self.warm_evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The shared sampling plan for a window of `benchmark`: the BBV
    /// profile + clustering of [`SamplingPlan::profile`], computed once
    /// per (benchmark, seed, region, interval, cluster cap) and reused by
    /// every mechanism column of a sampled sweep.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownBenchmark`] if `benchmark` is not in the
    /// registry.
    pub fn sampling_plan(
        &self,
        benchmark: &str,
        seed: u64,
        region: TraceWindow,
        interval: u64,
        max_clusters: usize,
    ) -> Result<Arc<SamplingPlan>, SimError> {
        let (_workload, buffer) = self.trace(benchmark, seed, region.end())?;
        let slot = {
            let mut plans = self.plans.lock().expect("plan map lock");
            Arc::clone(
                plans
                    .entry((
                        buffer.benchmark(),
                        seed,
                        region.skip,
                        region.simulate,
                        interval,
                        max_clusters,
                    ))
                    .or_default(),
            )
        };
        // Per-slot lock: concurrent same-key requests wait for one
        // profiling pass instead of duplicating it.
        let mut state = slot.state.lock().expect("plan slot lock");
        if let Some(plan) = state.as_ref() {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        let disk_key = format!(
            "{}|seed={seed:#x}|region={}+{}|interval={interval}|k={max_clusters}",
            buffer.benchmark(),
            region.skip,
            region.simulate,
        );
        if let Some(payload) = self.disk.as_ref().and_then(|d| d.load("plan", &disk_key)) {
            let mut d = Decoder::new(&payload);
            if let Ok(plan) = SamplingPlan::decode(&mut d).and_then(|p| d.finish().map(|_| p)) {
                self.plan_disk_hits.fetch_add(1, Ordering::Relaxed);
                let plan = Arc::new(plan);
                *state = Some(Arc::clone(&plan));
                return Ok(plan);
            }
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(SamplingPlan::profile(
            TraceBuffer::replay(&buffer),
            region,
            interval,
            max_clusters,
            seed,
        ));
        if let Some(disk) = &self.disk {
            let mut e = Encoder::new();
            plan.encode(&mut e);
            disk.store("plan", &disk_key, e.as_bytes());
        }
        *state = Some(Arc::clone(&plan));
        Ok(plan)
    }

    /// Drops all cached warm states (the largest artifacts). Long-lived
    /// stores — `run_all` keeps one across the whole battery — call this
    /// between experiments: warm states only pay off *within* a sweep,
    /// while traces and the result memo stay useful across experiments
    /// and are kept.
    pub fn clear_warm_states(&self) {
        self.warm.lock().expect("warm map lock").clear();
        self.warm_bytes.store(0, Ordering::Relaxed);
    }

    pub(crate) fn memo_key(
        config: &SystemConfig,
        mechanism: MechanismKind,
        benchmark: &str,
        opts: &SimOptions,
    ) -> String {
        format!(
            "{benchmark}|{mechanism:?}|seed={:#x}|window={}+{}|check={}|max={}|sampling={:?}|{}",
            opts.seed,
            opts.window.skip,
            opts.window.simulate,
            opts.check_values,
            opts.max_cycles,
            opts.sampling,
            config_key(config),
        )
    }

    /// RAM-then-disk memo lookup that counts *hits only* — a miss is not
    /// a `memo_misses` yet, because under leases the caller may wait for
    /// another worker's memo instead of computing. `memo_misses` (the
    /// "cells recomputed" number) is counted exactly once per actual
    /// computation, in [`memo_run`](ArtifactStore::memo_run).
    pub(crate) fn memo_probe(&self, key: &str) -> Option<Arc<RunResult>> {
        if let Some(hit) = self.memo.lock().expect("memo lock").get(key).cloned() {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        if let Some(payload) = self.disk.as_ref().and_then(|d| d.load("memo", key)) {
            let mut d = Decoder::new(&payload);
            if let Ok(result) = RunResult::decode(&mut d).and_then(|r| d.finish().map(|_| r)) {
                self.memo_disk_hits.fetch_add(1, Ordering::Relaxed);
                let result = Arc::new(result);
                self.memo
                    .lock()
                    .expect("memo lock")
                    .insert(key.to_owned(), Arc::clone(&result));
                return Some(result);
            }
        }
        None
    }

    /// Resolves a memoized cell: probe, else compute-and-journal —
    /// through the lease layer when one is attached, so across concurrent
    /// processes each cell is computed at most once.
    ///
    /// Without a lease manager this is exactly the old miss path: count
    /// the miss, run `compute`, journal. With one, the claim loop of the
    /// [`LeaseManager`] docs runs instead; `cell` and `repro` feed its
    /// quarantine reports, and a panic unwinding out of `compute`
    /// abandons the claim (counting toward quarantine) before resuming.
    pub(crate) fn memo_run(
        &self,
        key: &str,
        cell: &str,
        benchmark: &str,
        repro: &str,
        compute: impl FnOnce() -> Result<RunResult, SimError>,
    ) -> Result<Arc<RunResult>, SimError> {
        // In-process single-flight: concurrent same-key requests elect
        // one leader; the rest block until its memo lands. This layers
        // *under* the lease protocol — the leader still claims the
        // cross-process lease — so N concurrent requests in one process
        // cost one lease claim and one simulation, not N.
        enum Role {
            Leader(Arc<Flight>),
            Follower(Arc<Flight>),
        }
        let mut compute = Some(compute);
        loop {
            if let Some(hit) = self.memo_probe(key) {
                return Ok(hit);
            }
            let role = {
                let mut inflight = self.inflight.lock().expect("inflight lock");
                match inflight.get(key) {
                    Some(flight) => Role::Follower(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight::default());
                        inflight.insert(key.to_owned(), Arc::clone(&flight));
                        Role::Leader(flight)
                    }
                }
            };
            match role {
                Role::Leader(flight) => {
                    let _deregister = FlightGuard {
                        store: self,
                        key,
                        flight,
                    };
                    let compute = compute.take().expect("leadership is acquired once");
                    return self.memo_run_leader(key, cell, benchmark, repro, compute);
                }
                Role::Follower(flight) => {
                    self.memo_coalesced.fetch_add(1, Ordering::Relaxed);
                    let mut done = flight.done.lock().expect("flight lock");
                    while !*done {
                        done = flight.cv.wait(done).expect("flight lock");
                    }
                    // Leader finished: on success the probe at the top of
                    // the loop hits its memo; on failure (or panic) this
                    // request retries for leadership and computes itself.
                }
            }
        }
    }

    /// The compute-and-journal path of [`memo_run`](Self::memo_run), run
    /// by exactly one thread per key at a time.
    fn memo_run_leader(
        &self,
        key: &str,
        cell: &str,
        benchmark: &str,
        repro: &str,
        compute: impl FnOnce() -> Result<RunResult, SimError>,
    ) -> Result<Arc<RunResult>, SimError> {
        let Some(lease) = &self.lease else {
            // A prior leader deregisters only after journaling its memo,
            // so this probe closes the probe→register race: if the key
            // landed between the caller's probe and our registration, it
            // is visible here.
            if let Some(hit) = self.memo_probe(key) {
                return Ok(hit);
            }
            self.memo_misses.fetch_add(1, Ordering::Relaxed);
            let result = compute()?;
            self.memo_put(key.to_owned(), result);
            return Ok(self.memo.lock().expect("memo lock")[key].clone());
        };
        // Re-claiming after Busy/steal loops back here; the closure can
        // only actually run once, so carry it in an Option.
        let mut compute = Some(compute);
        let started = Instant::now();
        let mut waited = false;
        let mut poll = Duration::from_millis(5);
        let poll_cap = std::cmp::max(poll, Duration::from_millis(200).min(lease.timeout() / 3));
        loop {
            if let Some(hit) = self.memo_probe(key) {
                if waited {
                    self.lease_waits.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(hit);
            }
            // Shard steering: give the owning shard a grace period to
            // publish its memo before claiming its cell.
            if let Some(shard) = &self.shard {
                if !shard.owns(key) && started.elapsed() < self.steal_grace {
                    waited = true;
                    std::thread::sleep(poll);
                    poll = (poll * 2).min(poll_cap);
                    continue;
                }
            }
            match lease.claim(key, cell, repro) {
                Claim::Acquired(guard) => {
                    self.lease_claims.fetch_add(1, Ordering::Relaxed);
                    self.memo_misses.fetch_add(1, Ordering::Relaxed);
                    let compute = compute.take().expect("claim acquired once");
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute));
                    match outcome {
                        Ok(Ok(result)) => {
                            self.memo_put(key.to_owned(), result);
                            guard.complete();
                            return Ok(self.memo.lock().expect("memo lock")[key].clone());
                        }
                        Ok(Err(e)) => {
                            // A deterministic failure, not a crash: the
                            // guard's Drop releases lease + attempts (a
                            // retry would fail identically).
                            drop(guard);
                            return Err(e);
                        }
                        Err(payload) => {
                            // Crash-like: keep the attempt on record and
                            // expire the lease so the next claimer
                            // retries — or quarantines.
                            guard.abandon();
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
                Claim::Busy => {
                    waited = true;
                    std::thread::sleep(poll);
                    poll = (poll * 2).min(poll_cap);
                }
                Claim::Quarantined { attempts } => {
                    self.cells_quarantined.fetch_add(1, Ordering::Relaxed);
                    return Err(crate::lease::quarantined_error(benchmark, attempts));
                }
            }
        }
    }

    /// Clean-shutdown sweep for multi-process runs: releases every lease
    /// this process still holds and fsyncs the memo journal, so a
    /// follow-up run neither waits out stale-lease timeouts nor loses
    /// journaled cells to a machine crash. A no-op without those tiers.
    pub fn finish(&self) {
        if let Some(lease) = &self.lease {
            lease.release_owned();
        }
        if let Some(disk) = &self.disk {
            disk.sync_class("memo");
        }
    }

    /// An RAII handle over [`finish`](ArtifactStore::finish): the sweep
    /// runs when the guard drops — on clean returns, early `?` exits
    /// *and* unwinding panics alike — so exit paths that forget (or never
    /// reach) an explicit `finish()` cannot leak lease files. `finish` is
    /// idempotent; guarded code may still call it explicitly before a
    /// `std::process::exit` (which skips `Drop`).
    pub fn finish_guard(self: &Arc<Self>) -> FinishGuard {
        FinishGuard {
            store: Arc::clone(self),
        }
    }

    /// Journals a completed cell: into RAM and — with a disk tier — as
    /// one atomically written file, immediately, so a killed campaign
    /// resumes from exactly the cells that finished.
    pub(crate) fn memo_put(&self, key: String, result: RunResult) {
        if let Some(disk) = &self.disk {
            let mut e = Encoder::new();
            result.encode(&mut e);
            disk.store("memo", &key, e.as_bytes());
        }
        self.memo
            .lock()
            .expect("memo lock")
            .insert(key, Arc::new(result));
    }
}

/// Runs [`ArtifactStore::finish`] on drop (see
/// [`ArtifactStore::finish_guard`]): lease files are released and the
/// memo journal fsynced however the scope exits — including panics —
/// which is what lets the serve daemon's drain path and panicking tests
/// guarantee a lease-free cache directory.
#[must_use = "the sweep runs when the guard drops; an unbound guard drops immediately"]
pub struct FinishGuard {
    store: Arc<ArtifactStore>,
}

impl FinishGuard {
    /// The guarded store.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }
}

impl std::fmt::Debug for FinishGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FinishGuard").finish_non_exhaustive()
    }
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.store.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_shared_and_grows() {
        let store = ArtifactStore::new();
        let (w1, b1) = store.trace("swim", 7, 1_000).unwrap();
        let (w2, b2) = store.trace("swim", 7, 500).unwrap();
        assert!(Arc::ptr_eq(&w1, &w2), "workload shared");
        assert!(Arc::ptr_eq(&b1, &b2), "shorter request reuses the buffer");
        let (w3, b3) = store.trace("swim", 7, 2_000).unwrap();
        assert!(Arc::ptr_eq(&w1, &w3), "workload survives buffer growth");
        assert_eq!(b3.len(), 2_000);
        // The grown buffer replays the same prefix.
        let old: Vec<_> = TraceBuffer::replay(&b1).collect();
        let new: Vec<_> = TraceBuffer::replay(&b3).take(1_000).collect();
        assert_eq!(old, new);
        let stats = store.stats();
        assert_eq!(stats.trace_hits, 1);
        assert_eq!(stats.trace_misses, 2);
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let store = ArtifactStore::new();
        assert!(matches!(
            store.trace("quake3", 1, 10),
            Err(SimError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn warm_state_captures_on_second_request() {
        let store = ArtifactStore::new();
        let base = Arc::new(SystemConfig::baseline_constant_memory());
        assert!(
            store
                .warm_state("swim", 7, 1_000, 0, &base)
                .unwrap()
                .is_none(),
            "first request is declined (capture deferred until reuse)"
        );
        let b = store
            .warm_state("swim", 7, 1_000, 0, &base)
            .unwrap()
            .unwrap();
        let c = store
            .warm_state("swim", 7, 1_000, 0, &base)
            .unwrap()
            .unwrap();
        assert!(Arc::ptr_eq(&b, &c));
        let mut other = SystemConfig::baseline_constant_memory();
        other.l1d.mshr_entries = 4;
        let other = Arc::new(other);
        assert!(
            store
                .warm_state("swim", 7, 1_000, 0, &other)
                .unwrap()
                .is_none(),
            "different config gates independently"
        );
        assert!(
            store
                .warm_state("swim", 7, 1_000, 500, &base)
                .unwrap()
                .is_none(),
            "different warm start gates independently"
        );
        let stats = store.stats();
        assert_eq!(stats.warm_declined, 3);
        assert_eq!(stats.warm_misses, 1);
        assert_eq!(stats.warm_hits, 1);
        store.clear_warm_states();
        assert!(
            store
                .warm_state("swim", 7, 1_000, 0, &base)
                .unwrap()
                .is_none(),
            "cleared states re-arm the gate"
        );
    }

    #[test]
    fn truncated_warm_state_covers_only_the_tail() {
        let store = ArtifactStore::new();
        let base = Arc::new(SystemConfig::baseline_constant_memory());
        let full_key = store.warm_state("swim", 7, 2_000, 0, &base).unwrap();
        assert!(full_key.is_none());
        let full = store
            .warm_state("swim", 7, 2_000, 0, &base)
            .unwrap()
            .unwrap();
        let trunc_key = store.warm_state("swim", 7, 2_000, 1_500, &base).unwrap();
        assert!(trunc_key.is_none());
        let trunc = store
            .warm_state("swim", 7, 2_000, 1_500, &base)
            .unwrap()
            .unwrap();
        assert_eq!(full.log.insts(), 2_000);
        assert_eq!(trunc.log.insts(), 500, "only the tail is warmed");
    }

    #[test]
    fn sampling_plan_is_shared() {
        let store = ArtifactStore::new();
        let region = TraceWindow::new(5_000, 50_000);
        let a = store.sampling_plan("gcc", 7, region, 10_000, 4).unwrap();
        let b = store.sampling_plan("gcc", 7, region, 10_000, 4).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request hits the shared plan");
        let c = store.sampling_plan("gcc", 7, region, 25_000, 4).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different interval is a new plan");
        let stats = store.stats();
        assert_eq!(stats.plan_hits, 1);
        assert_eq!(stats.plan_misses, 2);
        assert!(matches!(
            store.sampling_plan("quake3", 1, region, 10_000, 4),
            Err(SimError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn env_knob_parses() {
        // Not set in the test environment: sharing defaults on.
        assert!(ArtifactStore::from_env().is_enabled() == ArtifactStore::enabled_by_env());
        assert!(!ArtifactStore::disabled().is_enabled());
        assert!(ArtifactStore::new().is_enabled());
    }
}
