//! Deterministic cell-to-shard assignment for multi-process campaigns.
//!
//! A shard spec `i/N` (0-based) assigns every memoized cell to exactly
//! one of `N` shards by hashing its full content key — the same key that
//! names its [`DiskCache`](crate::DiskCache) memo file — so the
//! partition is stable across processes, runs and machines, and
//! re-keying a cell (config/window change) re-shards only that cell.
//!
//! Ownership is a *claim preference*, not a hard partition: every worker
//! still runs the full battery, but a worker reaching a cell it does not
//! own first waits a grace period (`MICROLIB_STEAL_GRACE_MS`) for the
//! owner's result to land in the shared cache, and only then claims the
//! cell itself. That keeps the partition effective when all owners are
//! healthy and guarantees progress when one is not — a dead shard's
//! cells are simply (re)computed by whoever needs them next, which is
//! what makes the coordinator's crash recovery work.

use microlib_model::codec::fnv1a;

/// A `index/count` shard assignment (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// This worker's shard, `0 <= index < count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl ShardSpec {
    /// Parses `"i/N"` with `0 <= i < N`.
    ///
    /// # Errors
    ///
    /// Describes the malformed spec.
    pub fn parse(spec: &str) -> Result<ShardSpec, String> {
        let err = || format!("shard spec {spec:?} is not \"i/N\" with 0 <= i < N");
        let (index, count) = spec.split_once('/').ok_or_else(err)?;
        let index: u32 = index.trim().parse().map_err(|_| err())?;
        let count: u32 = count.trim().parse().map_err(|_| err())?;
        if count == 0 || index >= count {
            return Err(err());
        }
        Ok(ShardSpec { index, count })
    }

    /// The shard spec `MICROLIB_SHARD` requests, if any (a malformed
    /// value warns on stderr and is ignored).
    pub fn from_env() -> Option<ShardSpec> {
        let spec = std::env::var("MICROLIB_SHARD").ok()?;
        if spec.is_empty() {
            return None;
        }
        match ShardSpec::parse(&spec) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("MICROLIB_SHARD ignored: {e}");
                None
            }
        }
    }

    /// Whether this shard owns the cell with content key `key`.
    pub fn owns(&self, key: &str) -> bool {
        // FNV-1a's low bits correlate across the structured, mostly-
        // shared key strings of one battery; finalize (splitmix64-style)
        // so the modulo sees well-mixed bits and shards stay balanced.
        let mut h = fnv1a(key.as_bytes());
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        h % u64::from(self.count) == u64::from(self.index)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_and_rejects_garbage() {
        assert_eq!(
            ShardSpec::parse("0/4").unwrap(),
            ShardSpec { index: 0, count: 4 }
        );
        assert_eq!(
            ShardSpec::parse("3/4").unwrap(),
            ShardSpec { index: 3, count: 4 }
        );
        assert_eq!(
            ShardSpec::parse("0/1").unwrap(),
            ShardSpec { index: 0, count: 1 }
        );
        assert!(ShardSpec::parse("1/1").is_err());
        assert!(ShardSpec::parse("4/4").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("a/4").is_err());
        assert!(ShardSpec::parse("2").is_err());
        assert!(ShardSpec::parse("-1/4").is_err());
        assert_eq!(ShardSpec::parse("2/8").unwrap().to_string(), "2/8");
    }

    #[test]
    fn partition_is_total_and_disjoint() {
        let shards: Vec<ShardSpec> = (0..4).map(|index| ShardSpec { index, count: 4 }).collect();
        let mut per_shard = [0usize; 4];
        for i in 0..1000 {
            let key = format!("benchmark-{i}|mech|window=2000+{i}");
            let owners: Vec<u32> = shards
                .iter()
                .filter(|s| s.owns(&key))
                .map(|s| s.index)
                .collect();
            assert_eq!(owners.len(), 1, "exactly one owner for {key}");
            per_shard[owners[0] as usize] += 1;
        }
        for (i, n) in per_shard.iter().enumerate() {
            assert!(
                (150..=350).contains(n),
                "shard {i} owns {n}/1000 keys — badly unbalanced"
            );
        }
    }

    #[test]
    fn assignment_is_stable() {
        let s = ShardSpec { index: 1, count: 3 };
        let key = "swim|Ghb|seed=0xc0ffee|window=2000+2000";
        assert_eq!(s.owns(key), s.owns(key));
    }
}
