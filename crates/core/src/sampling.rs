//! SimPoint-sampled simulation: run a handful of weighted representative
//! intervals instead of the whole trace window, then reconstruct the
//! whole-window measurements.
//!
//! Sampling is a property of [`SimOptions`]: with
//! [`SamplingMode::SimPoints`] every `run_one*` entry point (and therefore
//! every campaign cell) turns into
//!
//! 1. a **plan** — BBV-profile the window, cluster the interval vectors,
//!    keep a weighted representative (plus, for multi-member clusters, a
//!    centroid-farthest probe) per cluster
//!    ([`microlib_trace::SamplingPlan`]; shared across all mechanisms of a
//!    benchmark through the [`ArtifactStore`]);
//! 2. one **continuous pass** over the trace — the usual warm phase up to
//!    the window start (sharing the same warm-state checkpoints full-mode
//!    cells use), then detailed simulation of each slice in steady state
//!    (ramped in, measured between counter snapshots, quiesced) with
//!    functional fast-forward through the gaps, so caches, memory and the
//!    mechanism evolve over the whole window exactly once;
//! 3. a **reconstruction** — per-slice CPIs and counters recombined into
//!    one weighted whole-window [`RunResult`], carrying a
//!    [`SamplingEstimate`] with the per-interval CPIs and a reported error
//!    bound.
//!
//! The reconstruction is deterministic (slices run in interval order and
//! combine in fixed order), so sampled campaigns keep the engine's
//! bit-identical-across-thread-counts guarantee — for any worker count
//! and with the artifact store on or off.

use crate::artifacts::ArtifactStore;
use crate::simulator::{simulate, simulate_sampled, RunResult, SimError, SimOptions};
use microlib_cpu::CoreStats;
use microlib_mech::MechanismKind;
use microlib_model::stats::{SampledPoint, SamplingEstimate};
use microlib_model::{
    CacheStats, MechanismStats, MemoryStats, PerfSummary, PrefetchQueueStats, SystemConfig,
};
use microlib_trace::{benchmarks, SamplingPlan, TraceWindow, Workload};
use std::sync::Arc;

/// How a run covers its trace window.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SamplingMode {
    /// Simulate every instruction of the window in detail (the paper's
    /// fixed-trace methodology; the default).
    #[default]
    Full,
    /// Simulate only SimPoint-selected representative intervals and
    /// reconstruct the whole-window result from their weighted
    /// measurements.
    SimPoints {
        /// Instructions per profiling interval (also the length of each
        /// detailed slice). Intervals that do not fit the window are
        /// degraded to a single full-window slice.
        interval: u64,
        /// Cluster-count cap for k-means (the BIC rule usually keeps
        /// fewer).
        max_clusters: usize,
        /// Functional warm-up budget before the window: `0` warms the
        /// entire trace prefix (exact warm state, the default); a
        /// positive value warms only the last `warmup` instructions
        /// before the window start, trading warm-up time for warm-state
        /// accuracy. Gaps *between* slices are always warmed exactly.
        warmup: u64,
    },
}

/// Aggregator over the weighted parts: scales one `u64` counter of each
/// part to whole-window terms and sums.
type CounterAgg<'a> = &'a dyn Fn(&dyn Fn(&RunResult) -> u64) -> u64;

impl SamplingMode {
    /// The default SimPoint configuration for a window: twenty intervals
    /// across the simulated region but never shorter than 10 000
    /// instructions (shorter intervals are dominated by interval-to-
    /// interval noise at this simulation scale), at most three clusters —
    /// each sampled at both its centroid-nearest and centroid-farthest
    /// interval — and the exact full-prefix warm-up.
    ///
    /// Accuracy holds across window sizes (median CPI error ~1.4% on the
    /// standard campaign); wall-clock speedup grows with the window, from
    /// ~1.5× at the standard 100 k window to ~3× at 500 k (the regime
    /// SimPoint exists for — the floor is the minimum detailed coverage a
    /// 2%-accurate estimate needs).
    ///
    /// # Examples
    ///
    /// ```
    /// use microlib::SamplingMode;
    /// use microlib_trace::TraceWindow;
    ///
    /// let mode = SamplingMode::simpoints_for(TraceWindow::new(150_000, 500_000));
    /// assert_eq!(
    ///     mode,
    ///     SamplingMode::SimPoints { interval: 25_000, max_clusters: 3, warmup: 0 }
    /// );
    /// ```
    pub fn simpoints_for(window: TraceWindow) -> Self {
        SamplingMode::SimPoints {
            interval: (window.simulate / 20).max(10_000),
            max_clusters: 3,
            warmup: 0,
        }
    }

    /// Whether this mode samples (anything but [`SamplingMode::Full`]).
    pub fn is_sampled(&self) -> bool {
        !matches!(self, SamplingMode::Full)
    }
}

/// Computes (or fetches) the sampling plan and runs one detailed slice per
/// representative interval, recombining the results. Called by the
/// `run_one*` entry points when `opts.sampling` samples.
pub(crate) fn run_sampled(
    store: Option<&ArtifactStore>,
    config: Arc<SystemConfig>,
    label: MechanismKind,
    benchmark: &str,
    opts: &SimOptions,
) -> Result<RunResult, SimError> {
    let SamplingMode::SimPoints {
        interval,
        max_clusters,
        warmup,
    } = opts.sampling
    else {
        unreachable!("run_sampled requires a sampling mode");
    };
    let interval = interval.max(1);
    let max_clusters = max_clusters.max(1);
    let plan = match store {
        Some(store) => {
            store.sampling_plan(benchmark, opts.seed, opts.window, interval, max_clusters)?
        }
        None => {
            let profile = benchmarks::by_name(benchmark)
                .ok_or_else(|| SimError::UnknownBenchmark(benchmark.to_owned()))?;
            let workload = Workload::new(profile, opts.seed);
            Arc::new(SamplingPlan::profile(
                workload.stream(),
                opts.window,
                interval,
                max_clusters,
                opts.seed,
            ))
        }
    };

    let windows: Vec<TraceWindow> = plan.windows().map(|(w, _)| w).collect();
    let weights: Vec<f64> = plan.windows().map(|(_, weight)| weight).collect();
    // Prefix warm-up budget: 0 warms the whole prefix [0, skip); a
    // positive budget warms only the last `warmup` instructions before
    // the window (the gaps between slices are always warmed exactly).
    let warm_start = if warmup == 0 {
        0
    } else {
        opts.window.skip.saturating_sub(warmup)
    };

    if windows.len() == 1 && windows[0] == opts.window {
        // Degenerate single-slice plan (window too short to cluster):
        // run it exactly as a full simulation would (bit-identical).
        let child = SimOptions {
            sampling: SamplingMode::Full,
            ..*opts
        };
        let result = simulate(
            store,
            Arc::clone(&config),
            label.build(),
            label,
            benchmark,
            &child,
            warm_start,
        )?;
        return Ok(combine(label, opts, &plan, vec![(1.0, result)]));
    }

    let child = SimOptions {
        sampling: SamplingMode::Full,
        ..*opts
    };
    let parts = simulate_sampled(
        store,
        Arc::clone(&config),
        label.build(),
        label,
        benchmark,
        &child,
        warm_start,
        &windows,
    )?;
    let parts: Vec<(f64, RunResult)> = weights.into_iter().zip(parts).collect();
    Ok(combine(label, opts, &plan, parts))
}

/// Recombines per-slice measurements into one weighted whole-window
/// [`RunResult`]: every rate (CPI, misses per instruction, …) is the
/// cluster-weighted mean of the slice rates, scaled back to the window's
/// instruction count and rounded.
fn combine(
    label: MechanismKind,
    opts: &SimOptions,
    plan: &SamplingPlan,
    parts: Vec<(f64, RunResult)>,
) -> RunResult {
    debug_assert!(!parts.is_empty(), "a plan always has at least one point");
    let total = opts.window.simulate;
    // Per-part scale: weight × (window length / slice length). Multiplying
    // a slice counter by its scale and summing yields the whole-window
    // estimate of that counter.
    let scales: Vec<f64> = parts
        .iter()
        .map(|(w, r)| w * total as f64 / r.perf.instructions.max(1) as f64)
        .collect();
    let agg_u64 = |get: &dyn Fn(&RunResult) -> u64| -> u64 {
        parts
            .iter()
            .zip(&scales)
            .map(|((_, r), s)| get(r) as f64 * s)
            .sum::<f64>()
            .round() as u64
    };
    macro_rules! agg {
        ($($f:ident).+) => {
            agg_u64(&|r: &RunResult| r.$($f).+)
        };
    }
    macro_rules! agg_opt {
        ($outer:ident, $f:ident) => {
            agg_u64(&|r: &RunResult| r.$outer.map_or(0, |m| m.$f))
        };
    }

    let points: Vec<SampledPoint> = plan
        .points()
        .iter()
        .zip(&parts)
        .map(|(p, (_, r))| SampledPoint {
            interval: p.interval,
            weight: p.weight,
            cpi: r.perf.cycles as f64 / r.perf.instructions.max(1) as f64,
        })
        .collect();
    let estimate = SamplingEstimate::from_points(points);
    // Weighted CPI × instructions — identical to scaling each slice's
    // cycles (the scales factor out), stated once so perf and core agree.
    let cycles = (estimate.cpi * total as f64).round() as u64;

    let first = &parts[0].1;
    let core = CoreStats {
        committed: total,
        cycles,
        fetched: agg!(core.fetched),
        mispredict_stall_cycles: agg!(core.mispredict_stall_cycles),
        icache_stall_cycles: agg!(core.icache_stall_cycles),
        loads_forwarded: agg!(core.loads_forwarded),
        cache_reject_stalls: agg!(core.cache_reject_stalls),
        window_full_stalls: agg!(core.window_full_stalls),
        lsq_full_stalls: agg!(core.lsq_full_stalls),
        store_commit_stalls: agg!(core.store_commit_stalls),
    };
    RunResult {
        benchmark: first.benchmark,
        mechanism: label,
        perf: PerfSummary {
            instructions: total,
            cycles,
        },
        core,
        l1d: combine_cache(&agg_u64, &|r| &r.l1d),
        l1i: combine_cache(&agg_u64, &|r| &r.l1i),
        l2: combine_cache(&agg_u64, &|r| &r.l2),
        memory: MemoryStats {
            requests: agg!(memory.requests),
            total_latency: agg!(memory.total_latency),
            row_hits: agg!(memory.row_hits),
            precharges: agg!(memory.precharges),
            bus_busy_cycles: agg!(memory.bus_busy_cycles),
            queue_wait_cycles: agg!(memory.queue_wait_cycles),
        },
        mech_l1: first.mech_l1.is_some().then(|| MechanismStats {
            table_reads: agg_opt!(mech_l1, table_reads),
            table_writes: agg_opt!(mech_l1, table_writes),
            prefetches_requested: agg_opt!(mech_l1, prefetches_requested),
            prefetches_useful: agg_opt!(mech_l1, prefetches_useful),
            sidecar_hits: agg_opt!(mech_l1, sidecar_hits),
            sidecar_misses: agg_opt!(mech_l1, sidecar_misses),
            victims_captured: agg_opt!(mech_l1, victims_captured),
        }),
        mech_l2: first.mech_l2.is_some().then(|| MechanismStats {
            table_reads: agg_opt!(mech_l2, table_reads),
            table_writes: agg_opt!(mech_l2, table_writes),
            prefetches_requested: agg_opt!(mech_l2, prefetches_requested),
            prefetches_useful: agg_opt!(mech_l2, prefetches_useful),
            sidecar_hits: agg_opt!(mech_l2, sidecar_hits),
            sidecar_misses: agg_opt!(mech_l2, sidecar_misses),
            victims_captured: agg_opt!(mech_l2, victims_captured),
        }),
        queue_l1: first.queue_l1.is_some().then(|| PrefetchQueueStats {
            accepted: agg_opt!(queue_l1, accepted),
            discarded: agg_opt!(queue_l1, discarded),
            duplicates: agg_opt!(queue_l1, duplicates),
        }),
        queue_l2: first.queue_l2.is_some().then(|| PrefetchQueueStats {
            accepted: agg_opt!(queue_l2, accepted),
            discarded: agg_opt!(queue_l2, discarded),
            duplicates: agg_opt!(queue_l2, duplicates),
        }),
        hardware: first.hardware.clone(),
        sampling: Some(estimate),
    }
}

fn combine_cache(agg_u64: CounterAgg<'_>, get: &dyn Fn(&RunResult) -> &CacheStats) -> CacheStats {
    CacheStats {
        loads: agg_u64(&|r| get(r).loads),
        stores: agg_u64(&|r| get(r).stores),
        misses: agg_u64(&|r| get(r).misses),
        sidecar_hits: agg_u64(&|r| get(r).sidecar_hits),
        mshr_merges: agg_u64(&|r| get(r).mshr_merges),
        mshr_full_stalls: agg_u64(&|r| get(r).mshr_full_stalls),
        pipeline_stalls: agg_u64(&|r| get(r).pipeline_stalls),
        port_stalls: agg_u64(&|r| get(r).port_stalls),
        demand_fills: agg_u64(&|r| get(r).demand_fills),
        prefetch_fills: agg_u64(&|r| get(r).prefetch_fills),
        useful_prefetches: agg_u64(&|r| get(r).useful_prefetches),
        writebacks: agg_u64(&|r| get(r).writebacks),
        useless_prefetch_evictions: agg_u64(&|r| get(r).useless_prefetch_evictions),
    }
}
