//! Validation harnesses for the paper's §2.2: model-fidelity comparison
//! (Fig 1), reverse-engineering error measurement (Fig 2) and the DBCP
//! initial-vs-fixed study (Fig 3).

use crate::artifacts::ArtifactStore;
use crate::simulator::{run_one, run_one_with, RunResult, SimError, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::{FidelityConfig, MemoryModel, SystemConfig};
use microlib_trace::TraceWindow;
use std::sync::Arc;

/// One benchmark's IPC under two cache-model fidelities (Fig 1).
#[derive(Clone, Debug)]
pub struct FidelityComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// IPC with the detailed MicroLib model.
    pub detailed_ipc: f64,
    /// IPC with the SimpleScalar-like idealized model.
    pub idealized_ipc: f64,
}

impl FidelityComparison {
    /// Relative IPC difference (idealized vs detailed), in percent.
    pub fn gap_percent(&self) -> f64 {
        if self.detailed_ipc == 0.0 {
            return 0.0;
        }
        (self.idealized_ipc - self.detailed_ipc) / self.detailed_ipc * 100.0
    }
}

/// Runs Fig 1's comparison: the same benchmark + baseline cache under the
/// detailed and the SimpleScalar-like fidelity models.
///
/// # Errors
///
/// Propagates any [`SimError`] from the underlying runs.
pub fn compare_fidelity(
    benchmark: &str,
    window: TraceWindow,
    seed: u64,
) -> Result<FidelityComparison, SimError> {
    compare_fidelity_with(&ArtifactStore::disabled(), benchmark, window, seed)
}

/// [`compare_fidelity`] with shared artifacts: both runs draw the trace
/// (and, per fidelity configuration, the warm state) from `store`, and
/// repeated comparisons across a battery are served from its memo.
///
/// # Errors
///
/// Propagates any [`SimError`] from the underlying runs.
pub fn compare_fidelity_with(
    store: &ArtifactStore,
    benchmark: &str,
    window: TraceWindow,
    seed: u64,
) -> Result<FidelityComparison, SimError> {
    let opts = SimOptions {
        seed,
        window,
        ..SimOptions::default()
    };
    let mut detailed_cfg = SystemConfig::baseline_constant_memory();
    detailed_cfg.fidelity = FidelityConfig::microlib();
    let mut idealized_cfg = detailed_cfg.clone();
    idealized_cfg.fidelity = FidelityConfig::simplescalar_like();
    let (detailed_cfg, idealized_cfg) = (Arc::new(detailed_cfg), Arc::new(idealized_cfg));

    let detailed = run_one_with(store, &detailed_cfg, MechanismKind::Base, benchmark, &opts)?;
    let idealized = run_one_with(store, &idealized_cfg, MechanismKind::Base, benchmark, &opts)?;
    Ok(FidelityComparison {
        benchmark: benchmark.to_owned(),
        detailed_ipc: detailed.perf.ipc(),
        idealized_ipc: idealized.perf.ipc(),
    })
}

/// One benchmark's speedup under two experimental setups (Fig 2's
/// reverse-engineering error, reproduced as setup sensitivity — see
/// DESIGN.md §2 on the substitution for graph-read article numbers).
#[derive(Clone, Debug)]
pub struct SetupComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Speedup in the reproduction's standard setup.
    pub ours: f64,
    /// Speedup in the original article's setup (long arbitrary window,
    /// constant 70-cycle memory).
    pub article_setup: f64,
}

impl SetupComparison {
    /// Relative speedup error, in percent (Fig 2's y-axis).
    pub fn relative_error_percent(&self) -> f64 {
        if self.article_setup == 0.0 {
            return 0.0;
        }
        (self.ours - self.article_setup) / self.article_setup * 100.0
    }

    /// Whether the setups disagree on speedup vs slowdown (the paper's
    /// gcc/gzip sign-flip observation for TK).
    pub fn tendency_flipped(&self) -> bool {
        (self.ours > 1.0) != (self.article_setup > 1.0)
    }
}

/// Measures one mechanism's speedup under the reproduction's setup vs the
/// validation setup the articles used ("2-billion instruction traces,
/// skipping the first billion … original SimpleScalar 70-cycle constant
/// latency memory model", scaled down).
///
/// # Errors
///
/// Propagates any [`SimError`] from the four underlying runs.
pub fn compare_setups(
    mechanism: MechanismKind,
    benchmark: &str,
    our_window: TraceWindow,
    article_window: TraceWindow,
    seed: u64,
) -> Result<SetupComparison, SimError> {
    let ours_cfg = SystemConfig::baseline();
    let our_opts = SimOptions {
        seed,
        window: our_window,
        ..SimOptions::default()
    };

    let speedup = |cfg: &SystemConfig, opts: &SimOptions| -> Result<f64, SimError> {
        let base = run_one(cfg, MechanismKind::Base, benchmark, opts)?;
        let with = run_one(cfg, mechanism, benchmark, opts)?;
        Ok(with.perf.speedup_over(&base.perf))
    };

    Ok(SetupComparison {
        benchmark: benchmark.to_owned(),
        ours: speedup(&ours_cfg, &our_opts)?,
        article_setup: article_speedup(mechanism, benchmark, article_window, seed)?,
    })
}

/// The article half of [`compare_setups`] alone: speedup of `mechanism`
/// on `benchmark` under the original articles' setup (long arbitrary
/// window, constant 70-cycle memory). Split out so harnesses that already
/// hold the standard-setup speedup (from a campaign matrix) don't have to
/// re-simulate it.
///
/// # Errors
///
/// Any [`SimError`] from the two underlying runs.
pub fn article_speedup(
    mechanism: MechanismKind,
    benchmark: &str,
    article_window: TraceWindow,
    seed: u64,
) -> Result<f64, SimError> {
    article_speedup_with(
        &ArtifactStore::disabled(),
        mechanism,
        benchmark,
        article_window,
        seed,
    )
}

/// [`article_speedup`] with shared artifacts. The Base half of the pair
/// is mechanism-independent, so across the per-mechanism loops of Fig 2
/// (and the DBCP study of Fig 3, which uses the same setup) the store's
/// memo computes it once per benchmark instead of once per mechanism.
///
/// # Errors
///
/// Any [`SimError`] from the two underlying runs.
pub fn article_speedup_with(
    store: &ArtifactStore,
    mechanism: MechanismKind,
    benchmark: &str,
    article_window: TraceWindow,
    seed: u64,
) -> Result<f64, SimError> {
    let cfg = Arc::new(SystemConfig {
        memory: MemoryModel::simplescalar_70(),
        ..SystemConfig::baseline()
    });
    let opts = SimOptions {
        seed,
        window: article_window,
        ..SimOptions::default()
    };
    let base = run_one_with(store, &cfg, MechanismKind::Base, benchmark, &opts)?;
    let with = run_one_with(store, &cfg, mechanism, benchmark, &opts)?;
    Ok(with.perf.speedup_over(&base.perf))
}

/// Fig 3: speedups of the initial (buggy) and fixed DBCP implementations
/// on one benchmark, under the validation setup.
#[derive(Clone, Debug)]
pub struct DbcpComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Speedup of the initial reverse-engineered implementation.
    pub initial: f64,
    /// Speedup of the fixed implementation.
    pub fixed: f64,
}

impl DbcpComparison {
    /// Relative difference in percent (the paper reports an average 38%).
    pub fn difference_percent(&self) -> f64 {
        if self.initial == 0.0 {
            return 0.0;
        }
        (self.fixed - self.initial) / self.initial * 100.0
    }
}

/// Runs Fig 3's initial-vs-fixed DBCP comparison on one benchmark.
///
/// # Errors
///
/// Propagates any [`SimError`] from the three underlying runs.
pub fn compare_dbcp_variants(
    benchmark: &str,
    window: TraceWindow,
    seed: u64,
) -> Result<DbcpComparison, SimError> {
    compare_dbcp_variants_with(&ArtifactStore::disabled(), benchmark, window, seed)
}

/// [`compare_dbcp_variants`] with shared artifacts: the three runs share
/// one trace and warm state, and the Base run is memo-shared with any
/// other experiment using the same setup.
///
/// # Errors
///
/// Propagates any [`SimError`] from the three underlying runs.
pub fn compare_dbcp_variants_with(
    store: &ArtifactStore,
    benchmark: &str,
    window: TraceWindow,
    seed: u64,
) -> Result<DbcpComparison, SimError> {
    let cfg = Arc::new(SystemConfig::baseline_constant_memory());
    let opts = SimOptions {
        seed,
        window,
        ..SimOptions::default()
    };
    let base = run_one_with(store, &cfg, MechanismKind::Base, benchmark, &opts)?;
    let initial = run_one_with(store, &cfg, MechanismKind::DbcpInitial, benchmark, &opts)?;
    let fixed = run_one_with(store, &cfg, MechanismKind::Dbcp, benchmark, &opts)?;
    Ok(DbcpComparison {
        benchmark: benchmark.to_owned(),
        initial: initial.perf.speedup_over(&base.perf),
        fixed: fixed.perf.speedup_over(&base.perf),
    })
}

/// Convenience: the speedup of one run pair.
pub fn speedup_of(with: &RunResult, base: &RunResult) -> f64 {
    with.perf.speedup_over(&base.perf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idealized_model_is_at_least_as_fast() {
        let cmp = compare_fidelity("swim", TraceWindow::new(0, 4_000), 2).unwrap();
        assert!(
            cmp.idealized_ipc >= cmp.detailed_ipc * 0.98,
            "removing hazards must not slow the machine: {cmp:?}"
        );
    }

    #[test]
    fn gap_percent_sign_convention() {
        let c = FidelityComparison {
            benchmark: "x".into(),
            detailed_ipc: 1.0,
            idealized_ipc: 1.1,
        };
        assert!((c.gap_percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn setup_comparison_runs() {
        let cmp = compare_setups(
            MechanismKind::Tp,
            "gzip",
            TraceWindow::new(0, 3_000),
            TraceWindow::new(1_000, 3_000),
            4,
        )
        .unwrap();
        assert!(cmp.ours > 0.0 && cmp.article_setup > 0.0);
    }

    #[test]
    fn dbcp_variants_both_run() {
        let cmp = compare_dbcp_variants("gzip", TraceWindow::new(0, 3_000), 6).unwrap();
        assert!(cmp.initial > 0.0 && cmp.fixed > 0.0);
    }

    #[test]
    fn tendency_flip_detection() {
        let c = SetupComparison {
            benchmark: "x".into(),
            ours: 0.98,
            article_setup: 1.02,
        };
        assert!(c.tendency_flipped());
    }
}
