//! Plain-text report formatting for the experiment binaries: aligned
//! tables and simple horizontal bars, so every figure/table harness prints
//! the same kind of rows the paper shows.

/// Renders an aligned text table.
///
/// # Examples
///
/// ```
/// use microlib::report::text_table;
///
/// let out = text_table(
///     &["mech", "speedup"],
///     &[vec!["GHB".into(), "1.21".into()], vec!["SP".into(), "1.17".into()]],
/// );
/// assert!(out.contains("GHB"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a labelled horizontal bar scaled so `full_scale` is `width`
/// characters.
///
/// # Examples
///
/// ```
/// use microlib::report::bar;
///
/// let b = bar("swim", 1.5, 2.0, 20);
/// assert!(b.starts_with("swim"));
/// assert!(b.contains('#'));
/// ```
pub fn bar(label: &str, value: f64, full_scale: f64, width: usize) -> String {
    let filled = if full_scale > 0.0 {
        ((value / full_scale) * width as f64)
            .round()
            .clamp(0.0, width as f64) as usize
    } else {
        0
    };
    format!(
        "{label:<12} {:6.3} |{}{}|",
        value,
        "#".repeat(filled),
        " ".repeat(width - filled)
    )
}

/// Formats a float with three decimals (the paper's speedup precision).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = text_table(
            &["a", "long header"],
            &[vec!["xx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header separator spans the width.
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn bar_clamps_overflow() {
        let b = bar("x", 10.0, 1.0, 10);
        assert_eq!(b.matches('#').count(), 10);
        let empty = bar("x", 0.0, 1.0, 10);
        assert_eq!(empty.matches('#').count(), 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(-12.34), "-12.3%");
        assert_eq!(pct(5.0), "+5.0%");
    }
}
