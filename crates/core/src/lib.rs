//! # microlib
//!
//! A Rust reproduction of **MicroLib** — *"MicroLib: A Case for the
//! Quantitative Comparison of Micro-Architecture Mechanisms"* (Gracia
//! Pérez, Mouchard, Temam; MICRO 2004): an open library of modular
//! processor-simulator components, populated with the paper's thirteen
//! data-cache mechanism configurations, plus the complete quantitative-
//! comparison methodology (ranking, benchmark-selection analysis,
//! model-precision studies, trace-selection studies).
//!
//! ## Architecture
//!
//! | Crate | Role |
//! |---|---|
//! | [`microlib_model`] | shared vocabulary: events, the `Mechanism` trait, Table 1 configuration |
//! | [`microlib_mem`] | functional memory, detailed caches/MSHRs/buses, SDRAM |
//! | [`microlib_trace`] | 26 synthetic SPEC CPU2000 workloads, BBV + SimPoint |
//! | [`microlib_cpu`] | out-of-order RUU/LSQ core (sim-outorder-like) |
//! | [`microlib_mech`] | the mechanisms: TP, VC, SP, Markov, FVC, DBCP(+initial), TKVC, TK, CDP, CDPSP, TCP, GHB |
//! | [`microlib_cost`] | CACTI-like area + XCACTI-like energy models |
//! | `microlib` (this crate) | simulation driver, campaign engine, experiment matrix, ranking & analysis |
//!
//! Sweeps run on the [`Campaign`] engine: a rayon-backed work-stealing
//! pool over the (benchmark × mechanism) grid with deterministic result
//! ordering, per-cell error capture and structured progress reporting.
//! [`run_matrix`] is its abort-on-first-failure convenience wrapper.
//!
//! ## Quick start
//!
//! ```
//! use microlib::{run_one, SimOptions};
//! use microlib_mech::MechanismKind;
//! use microlib_model::SystemConfig;
//! use microlib_trace::TraceWindow;
//!
//! let opts = SimOptions {
//!     window: TraceWindow::new(0, 5_000),
//!     ..SimOptions::default()
//! };
//! let config = SystemConfig::baseline_constant_memory();
//! let base = run_one(&config, MechanismKind::Base, "swim", &opts)?;
//! let ghb = run_one(&config, MechanismKind::Ghb, "swim", &opts)?;
//! println!(
//!     "GHB speedup on swim: {:.3}",
//!     ghb.perf.speedup_over(&base.perf)
//! );
//! # Ok::<(), microlib::SimError>(())
//! ```
//!
//! The `crates/bench` experiment binaries regenerate every figure and
//! table of the paper; see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for measured-vs-paper results.

#![warn(missing_docs)]

mod analytic;
mod artifacts;
mod campaign;
mod disk;
mod experiment;
pub mod fault;
mod lease;
mod ranking;
pub mod report;
mod sampling;
mod sensitivity;
mod shard;
mod simulator;
mod validation;

pub use analytic::{run_analytic, AnalyticResult};
pub use artifacts::{config_key, ArtifactStore, ArtifactStoreStats, FinishGuard};
pub use campaign::{Campaign, CampaignCell, CampaignReport, CellUpdate};
pub use disk::{DiskCache, FORMAT_VERSION};
pub use experiment::{run_matrix, ExperimentConfig, Matrix};
pub use lease::{set_run_scope, Claim, LeaseGuard, LeaseManager, QuarantineReport};
pub use ranking::{
    rank_by_speedup, rank_mechanisms, ranking_row, subset_winner_analysis, RankedMechanism,
    SubsetWinners,
};
pub use sampling::SamplingMode;
pub use sensitivity::{benchmark_sensitivity, sensitivity_classes, BenchmarkSensitivity};
pub use shard::ShardSpec;
pub use simulator::{
    run_custom, run_custom_keyed, run_custom_with, run_one, run_one_with, RunResult, SimError,
    SimOptions,
};
pub use validation::{
    article_speedup, article_speedup_with, compare_dbcp_variants, compare_dbcp_variants_with,
    compare_fidelity, compare_fidelity_with, compare_setups, speedup_of, DbcpComparison,
    FidelityComparison, SetupComparison,
};

// Re-export the component crates so downstream users need only one
// dependency (the "library" face of MicroLib).
pub use microlib_cost as cost;
pub use microlib_cpu as cpu;
pub use microlib_mech as mech;
pub use microlib_mem as mem;
pub use microlib_model as model;
pub use microlib_trace as trace;
