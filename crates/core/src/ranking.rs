//! Ranking machinery: Fig 4's mechanism ordering, Table 7's
//! selection-dependent rankings, and Table 6's exhaustive benchmark-subset
//! winner analysis.

use crate::experiment::Matrix;
use microlib_mech::MechanismKind;

/// A ranked mechanism with its mean speedup.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedMechanism {
    /// The mechanism.
    pub mechanism: MechanismKind,
    /// Rank (1 = best).
    pub rank: usize,
    /// Mean speedup over the selection used.
    pub mean_speedup: f64,
}

/// Ranks all mechanisms of `matrix` by mean speedup over `selection`
/// (descending). Ties break toward the earlier mechanism in the sweep
/// order.
///
/// # Examples
///
/// ```no_run
/// use microlib::{rank_mechanisms, run_matrix, ExperimentConfig};
/// use microlib_trace::TraceWindow;
///
/// let cfg = ExperimentConfig::paper_baseline(TraceWindow::new(0, 50_000));
/// let matrix = run_matrix(&cfg)?;
/// let names: Vec<&str> = cfg.benchmarks.iter().map(String::as_str).collect();
/// for row in rank_mechanisms(&matrix, &names) {
///     println!("{:2}. {:8} {:.3}", row.rank, row.mechanism, row.mean_speedup);
/// }
/// # Ok::<(), microlib::SimError>(())
/// ```
pub fn rank_mechanisms(matrix: &Matrix, selection: &[&str]) -> Vec<RankedMechanism> {
    let rows: Vec<(MechanismKind, f64)> = matrix
        .mechanisms()
        .iter()
        .map(|k| (*k, matrix.mean_speedup_over(*k, selection)))
        .collect();
    rank_by_speedup(&rows)
}

/// Ranks `(mechanism, speedup)` rows by speedup, descending. Ties break
/// toward the earlier row. The sort uses [`f64::total_cmp`], so the order
/// is well-defined (and stable across std versions) even when a degenerate
/// input produces a NaN speedup — NaN sorts below every real value rather
/// than poisoning the comparator.
///
/// This is the single ranking primitive: both the matrix-level
/// [`rank_mechanisms`] and the miner's per-tier rankings go through it, so
/// a tier ranking flip can never be an artifact of two different sort
/// rules.
pub fn rank_by_speedup(rows: &[(MechanismKind, f64)]) -> Vec<RankedMechanism> {
    let mut indexed: Vec<(usize, MechanismKind, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, (k, s))| (i, *k, *s))
        .collect();
    indexed.sort_by(|a, b| match (a.2.is_nan(), b.2.is_nan()) {
        // NaN rows sink below every real speedup (total_cmp alone would
        // float positive NaN above +inf in a descending sort).
        (true, true) => a.0.cmp(&b.0),
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)),
    });
    indexed
        .into_iter()
        .enumerate()
        .map(|(rank, (_, mechanism, mean_speedup))| RankedMechanism {
            mechanism,
            rank: rank + 1,
            mean_speedup,
        })
        .collect()
}

/// Rank (1 = best) of each mechanism in sweep order, for one selection —
/// one row of Table 7.
pub fn ranking_row(matrix: &Matrix, selection: &[&str]) -> Vec<usize> {
    let ranked = rank_mechanisms(matrix, selection);
    matrix
        .mechanisms()
        .iter()
        .map(|k| {
            ranked
                .iter()
                .find(|r| r.mechanism == *k)
                .expect("mechanism present")
                .rank
        })
        .collect()
}

/// Table 6: for every subset size N, which mechanisms can win some
/// N-benchmark selection (winner = highest mean speedup over the subset).
#[derive(Clone, Debug)]
pub struct SubsetWinners {
    /// Mechanisms in sweep order.
    pub mechanisms: Vec<MechanismKind>,
    /// `can_win[m][n-1]` — whether mechanism `m` wins some subset of size
    /// `n`.
    pub can_win: Vec<Vec<bool>>,
    /// Number of benchmarks analyzed.
    pub benchmark_count: usize,
}

impl SubsetWinners {
    /// Whether `mechanism` wins some subset of size `n`.
    pub fn wins_at(&self, mechanism: MechanismKind, n: usize) -> bool {
        let m = self
            .mechanisms
            .iter()
            .position(|k| *k == mechanism)
            .expect("mechanism analyzed");
        self.can_win[m][n - 1]
    }

    /// Largest subset size `mechanism` can still win, if any.
    pub fn max_winning_size(&self, mechanism: MechanismKind) -> Option<usize> {
        let m = self.mechanisms.iter().position(|k| *k == mechanism)?;
        (1..=self.benchmark_count)
            .rev()
            .find(|n| self.can_win[m][n - 1])
    }

    /// Number of distinct winners possible at subset size `n`.
    pub fn winners_at(&self, n: usize) -> usize {
        self.can_win.iter().filter(|row| row[n - 1]).count()
    }
}

/// Exhaustively enumerates every benchmark subset (Gray-code walk, one
/// add/remove per step) and records, per subset size, which mechanism wins.
///
/// The paper: "we have ranked the different mechanisms for every possible
/// benchmark combination, from 1 to 26 benchmarks". With 26 benchmarks this
/// is 2²⁶ ≈ 67 M subsets; the incremental walk keeps it to a few seconds in
/// release builds.
///
/// # Panics
///
/// Panics if the matrix holds more than 26 benchmarks (2³⁰⁺ subsets would
/// not be a sensible exhaustive enumeration).
pub fn subset_winner_analysis(matrix: &Matrix) -> SubsetWinners {
    let mechanisms = matrix.mechanisms().to_vec();
    let benches = matrix.benchmarks().len();
    assert!(
        benches <= 26,
        "exhaustive enumeration capped at 26 benchmarks"
    );
    assert!(benches >= 1, "need at least one benchmark");

    // speedups[m][b]
    let speedups: Vec<Vec<f64>> = mechanisms.iter().map(|k| matrix.speedups_for(*k)).collect();

    let m_count = mechanisms.len();
    let mut sums = vec![0.0f64; m_count];
    let mut can_win = vec![vec![false; benches]; m_count];
    let mut members: u32 = 0; // popcount tracker

    // Standard binary-reflected Gray code: subset(i) = i ^ (i >> 1); the
    // bit toggled between steps i-1 and i is trailing_zeros(i).
    let total: u64 = 1u64 << benches;
    for i in 1..total {
        let bit = i.trailing_zeros() as usize;
        let gray = i ^ (i >> 1);
        let added = gray & (1 << bit) != 0;
        if added {
            members += 1;
            for (m, s) in sums.iter_mut().enumerate() {
                *s += speedups[m][bit];
            }
        } else {
            members -= 1;
            for (m, s) in sums.iter_mut().enumerate() {
                *s -= speedups[m][bit];
            }
        }
        if members == 0 {
            continue;
        }
        // Winner: strictly greatest sum (first index on exact ties).
        let mut best = 0;
        for m in 1..m_count {
            if sums[m] > sums[best] {
                best = m;
            }
        }
        can_win[best][(members - 1) as usize] = true;
    }

    SubsetWinners {
        mechanisms,
        can_win,
        benchmark_count: benches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_matrix, ExperimentConfig};
    use microlib_model::SystemConfig;
    use microlib_trace::TraceWindow;

    fn small_matrix() -> Matrix {
        let cfg = ExperimentConfig {
            system: SystemConfig::baseline_constant_memory(),
            benchmarks: vec!["swim".into(), "gzip".into(), "crafty".into()],
            mechanisms: vec![MechanismKind::Base, MechanismKind::Tp, MechanismKind::Sp],
            window: TraceWindow::new(0, 2_000),
            seed: 3,
            threads: 0,
            sampling: crate::SamplingMode::Full,
        };
        run_matrix(&cfg).unwrap()
    }

    #[test]
    fn ranking_is_a_permutation() {
        let m = small_matrix();
        let names: Vec<&str> = m.benchmarks().iter().map(String::as_str).collect();
        let row = ranking_row(&m, &names);
        let mut sorted = row.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn rank_one_has_highest_mean() {
        let m = small_matrix();
        let names: Vec<&str> = m.benchmarks().iter().map(String::as_str).collect();
        let ranked = rank_mechanisms(&m, &names);
        assert_eq!(ranked[0].rank, 1);
        assert!(ranked[0].mean_speedup >= ranked[1].mean_speedup);
        assert!(ranked[1].mean_speedup >= ranked[2].mean_speedup);
    }

    #[test]
    fn rank_by_speedup_is_total_even_with_nan() {
        // Regression: the old comparator used partial_cmp().unwrap_or(Equal),
        // which is not a total order when a degenerate speedup is NaN and
        // could give unspecified orderings. total_cmp sorts NaN last.
        let rows = [
            (MechanismKind::Tp, f64::NAN),
            (MechanismKind::Sp, 1.2),
            (MechanismKind::Base, 1.0),
            (MechanismKind::Ghb, f64::NAN),
        ];
        let ranked = rank_by_speedup(&rows);
        assert_eq!(ranked[0].mechanism, MechanismKind::Sp);
        assert_eq!(ranked[1].mechanism, MechanismKind::Base);
        // Both NaNs sort below every real value, original order preserved.
        assert_eq!(ranked[2].mechanism, MechanismKind::Tp);
        assert_eq!(ranked[3].mechanism, MechanismKind::Ghb);
        assert_eq!(
            ranked.iter().map(|r| r.rank).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn rank_by_speedup_breaks_ties_by_position() {
        let rows = [
            (MechanismKind::Base, 1.0),
            (MechanismKind::Vc, 1.5),
            (MechanismKind::Tp, 1.5),
        ];
        let ranked = rank_by_speedup(&rows);
        assert_eq!(ranked[0].mechanism, MechanismKind::Vc);
        assert_eq!(ranked[1].mechanism, MechanismKind::Tp);
    }

    #[test]
    fn subset_analysis_covers_all_sizes() {
        let m = small_matrix();
        let analysis = subset_winner_analysis(&m);
        // Exactly one winner of the full set.
        assert_eq!(analysis.winners_at(3), 1);
        // Every size has at least one winner.
        for n in 1..=3 {
            assert!(analysis.winners_at(n) >= 1);
        }
    }

    #[test]
    fn full_set_winner_matches_ranking() {
        let m = small_matrix();
        let names: Vec<&str> = m.benchmarks().iter().map(String::as_str).collect();
        let best = rank_mechanisms(&m, &names)[0].mechanism;
        let analysis = subset_winner_analysis(&m);
        assert!(analysis.wins_at(best, 3));
        assert_eq!(analysis.max_winning_size(best), Some(3));
    }

    #[test]
    fn synthetic_subset_winner_check() {
        // Hand-verifiable case via a crafted matrix: use the real runner
        // but check internal consistency — a mechanism that wins no
        // single-benchmark selection cannot be the full-set winner unless
        // means interact; verify winners_at(1) equals the number of
        // distinct per-benchmark argmaxes.
        let m = small_matrix();
        let analysis = subset_winner_analysis(&m);
        let mut single_winners = std::collections::HashSet::new();
        for b in m.benchmarks() {
            let mut best = (MechanismKind::Base, f64::MIN);
            for k in m.mechanisms() {
                let s = m.speedup(b, *k);
                if s > best.1 {
                    best = (*k, s);
                }
            }
            single_winners.insert(format!("{:?}", best.0));
        }
        assert_eq!(analysis.winners_at(1), single_winners.len());
    }
}
