//! Configuration types for every simulated component, with defaults matching
//! Table 1 of the paper ("Baseline configuration").

use std::fmt;

/// Write policy of a cache (Table 1: writeback everywhere).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WritePolicy {
    /// Dirty lines are written back on eviction.
    Writeback,
    /// Stores propagate immediately to the next level.
    Writethrough,
}

/// Allocation policy on a write miss (Table 1: allocate on write).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AllocPolicy {
    /// Write misses allocate the line.
    AllocateOnWrite,
    /// Write misses bypass the cache.
    NoWriteAllocate,
}

/// Replacement policy within a set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Replacement {
    /// Least-recently-used.
    Lru,
    /// Pseudo-random (xorshift over access count).
    Random,
    /// First-in-first-out.
    Fifo,
}

/// Geometry and timing of one cache level.
///
/// # Examples
///
/// ```
/// use microlib_model::CacheConfig;
///
/// let l1 = CacheConfig::baseline_l1d();
/// assert_eq!(l1.sets(), 1024); // 32 KB direct-mapped, 32-byte lines
/// assert_eq!(l1.ways(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Display name, e.g. `"L1D"`.
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity; `0` means fully associative.
    pub assoc: u32,
    /// Line size in bytes (power of two, at most 64).
    pub line_bytes: u64,
    /// Simultaneous accesses per cycle (ports). Refills consume a port when
    /// the fidelity model says so.
    pub ports: u32,
    /// Miss status holding registers (outstanding distinct line misses).
    pub mshr_entries: u32,
    /// Reads that can merge into one MSHR entry.
    pub mshr_reads_per_entry: u32,
    /// Hit latency in CPU cycles.
    pub latency: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Write-miss allocation policy.
    pub alloc_policy: AllocPolicy,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the geometry is inconsistent (capacity
    /// not divisible into sets, non-power-of-two line size, etc.).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes > 64 {
            return Err(ConfigError::new(format!(
                "{}: line size {} must be a power of two <= 64",
                self.name, self.line_bytes
            )));
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.line_bytes) {
            return Err(ConfigError::new(format!(
                "{}: capacity {} not a multiple of line size {}",
                self.name, self.size_bytes, self.line_bytes
            )));
        }
        let lines = self.size_bytes / self.line_bytes;
        let ways = if self.assoc == 0 {
            lines
        } else {
            self.assoc as u64
        };
        if ways == 0 || !lines.is_multiple_of(ways) {
            return Err(ConfigError::new(format!(
                "{}: {} lines not divisible by associativity {}",
                self.name, lines, ways
            )));
        }
        let sets = lines / ways;
        if !sets.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "{}: set count {} must be a power of two",
                self.name, sets
            )));
        }
        if self.ports == 0 {
            return Err(ConfigError::new(format!(
                "{}: needs at least one port",
                self.name
            )));
        }
        if self.mshr_entries == 0 || self.mshr_reads_per_entry == 0 {
            return Err(ConfigError::new(format!(
                "{}: MSHR entries and reads-per-entry must be positive",
                self.name
            )));
        }
        Ok(())
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Ways per set (resolving `assoc == 0` to "all lines in one set").
    pub fn ways(&self) -> u64 {
        if self.assoc == 0 {
            self.lines()
        } else {
            self.assoc as u64
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.lines() / self.ways()
    }

    /// Table 1: L1 data cache — 32 KB direct-mapped, 32-byte lines, 4 ports,
    /// 8 MSHRs × 4 reads, 1-cycle latency, writeback, allocate-on-write.
    pub fn baseline_l1d() -> Self {
        CacheConfig {
            name: "L1D".to_owned(),
            size_bytes: 32 * 1024,
            assoc: 1,
            line_bytes: 32,
            ports: 4,
            mshr_entries: 8,
            mshr_reads_per_entry: 4,
            latency: 1,
            write_policy: WritePolicy::Writeback,
            alloc_policy: AllocPolicy::AllocateOnWrite,
            replacement: Replacement::Lru,
        }
    }

    /// Table 1: L1 instruction cache — 32 KB 4-way LRU, 1-cycle latency.
    pub fn baseline_l1i() -> Self {
        CacheConfig {
            name: "L1I".to_owned(),
            size_bytes: 32 * 1024,
            assoc: 4,
            line_bytes: 32,
            ports: 1,
            mshr_entries: 4,
            mshr_reads_per_entry: 4,
            latency: 1,
            write_policy: WritePolicy::Writeback,
            alloc_policy: AllocPolicy::NoWriteAllocate,
            replacement: Replacement::Lru,
        }
    }

    /// Table 1: unified L2 — 1 MB 4-way LRU, 64-byte lines, 1 port,
    /// 8 MSHRs × 4 reads, 12-cycle latency, writeback, allocate-on-write.
    pub fn baseline_l2() -> Self {
        CacheConfig {
            name: "L2".to_owned(),
            size_bytes: 1024 * 1024,
            assoc: 4,
            line_bytes: 64,
            ports: 1,
            mshr_entries: 8,
            mshr_reads_per_entry: 4,
            latency: 12,
            write_policy: WritePolicy::Writeback,
            alloc_policy: AllocPolicy::AllocateOnWrite,
            replacement: Replacement::Lru,
        }
    }
}

/// A point-to-point bus: `width_bytes` transferred per beat, one beat every
/// `cpu_cycles_per_beat` CPU cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BusConfig {
    /// Bytes moved per beat.
    pub width_bytes: u64,
    /// CPU cycles per beat (bus at 400 MHz under a 2 GHz core = 5).
    pub cpu_cycles_per_beat: u64,
}

impl BusConfig {
    /// Table 1: L1↔L2 bus — 32 bytes wide at 2 GHz.
    pub fn baseline_l1_l2() -> Self {
        BusConfig {
            width_bytes: 32,
            cpu_cycles_per_beat: 1,
        }
    }

    /// Table 1: memory bus — 64 bytes (512 bits) wide at 400 MHz.
    pub fn baseline_memory() -> Self {
        BusConfig {
            width_bytes: 64,
            cpu_cycles_per_beat: 5,
        }
    }

    /// Beats (rounded up) needed to move `bytes`.
    pub fn beats_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.width_bytes)
    }

    /// CPU cycles needed to move `bytes`.
    pub fn cycles_for(&self, bytes: u64) -> u64 {
        self.beats_for(bytes) * self.cpu_cycles_per_beat
    }
}

/// How the SDRAM controller orders requests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SdramSchedule {
    /// Strict arrival order.
    Fcfs,
    /// Prefer requests hitting an already-open row (the Green-style schedule
    /// the paper "retained [as the] one that significantly reduces conflicts
    /// in row buffers").
    OpenRowFirst,
}

/// How line addresses map onto (bank, row, column).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BankInterleave {
    /// Consecutive lines walk banks round-robin (page-interleaved).
    Linear,
    /// Permutation-based interleaving (Zhang et al., MICRO 2000): the bank
    /// index is XOR-folded with low row bits to spread conflicting rows.
    Permutation,
}

/// SDRAM geometry and timing, all timings in CPU cycles (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SdramConfig {
    /// Number of banks.
    pub banks: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Column (line-sized) slots per row.
    pub columns: u32,
    /// RAS-to-RAS delay between different banks (tRRD).
    pub t_rrd: u64,
    /// Minimum row-active time (tRAS).
    pub t_ras: u64,
    /// RAS-to-CAS delay (tRCD).
    pub t_rcd: u64,
    /// CAS latency (CL).
    pub cas: u64,
    /// Row precharge time (tRP).
    pub t_rp: u64,
    /// Row cycle time (tRC).
    pub t_rc: u64,
    /// Controller queue entries.
    pub queue_entries: u32,
    /// Scheduling policy.
    pub schedule: SdramSchedule,
    /// Bank interleaving scheme.
    pub interleave: BankInterleave,
}

impl SdramConfig {
    /// Table 1 timings: the "170-cycle" SDRAM used in the paper's main
    /// experiments (2 GB, 4 banks, 8192 rows, 1024 columns; tRRD 20,
    /// tRAS 80, tRCD 30, CL 30, tRP 30, tRC 110; 32-entry queue).
    pub fn baseline() -> Self {
        SdramConfig {
            banks: 4,
            rows: 8192,
            columns: 1024,
            t_rrd: 20,
            t_ras: 80,
            t_rcd: 30,
            cas: 30,
            t_rp: 30,
            t_rc: 110,
            queue_entries: 32,
            schedule: SdramSchedule::OpenRowFirst,
            interleave: BankInterleave::Permutation,
        }
    }

    /// The scaled-down SDRAM of Fig 8 whose *average* latency matches the
    /// 70-cycle SimpleScalar constant (the paper scaled the original
    /// parameters, "especially the CAS latency, which was reduced from 6 to
    /// 2 memory cycles" — i.e. to one third).
    pub fn scaled_to_70_cycles() -> Self {
        SdramConfig {
            t_rrd: 8,
            t_ras: 30,
            t_rcd: 12,
            cas: 10,
            t_rp: 12,
            t_rc: 42,
            ..Self::baseline()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the geometry or timing is degenerate
    /// (zero banks/rows/columns/queue, or tRC shorter than tRAS + tRP).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.banks == 0 || !self.banks.is_power_of_two() {
            return Err(ConfigError::new(
                "SDRAM banks must be a nonzero power of two",
            ));
        }
        if self.rows == 0 || self.columns == 0 {
            return Err(ConfigError::new("SDRAM rows/columns must be nonzero"));
        }
        if self.queue_entries == 0 {
            return Err(ConfigError::new("SDRAM controller queue must be nonzero"));
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(ConfigError::new(format!(
                "SDRAM tRC {} must cover tRAS {} + tRP {}",
                self.t_rc, self.t_ras, self.t_rp
            )));
        }
        Ok(())
    }
}

/// The main-memory model behind the L2 (the independent variable of Fig 8).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemoryModel {
    /// SimpleScalar-style constant latency with unlimited bandwidth.
    Constant {
        /// Flat latency in CPU cycles (the articles' 70-cycle model).
        latency: u64,
    },
    /// The detailed SDRAM model.
    Sdram(SdramConfig),
}

impl MemoryModel {
    /// The constant 70-cycle model used by "many articles".
    pub fn simplescalar_70() -> Self {
        MemoryModel::Constant { latency: 70 }
    }

    /// Short display label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            MemoryModel::Constant { latency } => format!("constant-{latency}"),
            MemoryModel::Sdram(cfg) => {
                if *cfg == SdramConfig::scaled_to_70_cycles() {
                    "sdram-70".to_owned()
                } else {
                    "sdram-170".to_owned()
                }
            }
        }
    }
}

/// Out-of-order core parameters (Table 1, "Processor core").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreConfig {
    /// Register update unit (instruction window) entries.
    pub ruu_entries: u32,
    /// Load/store queue entries.
    pub lsq_entries: u32,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions decoded/dispatched per cycle.
    pub decode_width: u32,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_mult: u32,
    /// Floating-point ALUs.
    pub fp_alu: u32,
    /// Floating-point multiply/divide units.
    pub fp_mult: u32,
    /// Load/store units (address-generation ports into the LSQ).
    pub mem_units: u32,
    /// Front-end refill penalty after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
}

impl CoreConfig {
    /// Table 1: 128-RUU, 128-LSQ, 8-wide fetch/decode/issue/commit,
    /// 8 IntALU, 3 IntMult/Div, 6 FPALU, 2 FPMult/Div, 4 load/store units.
    pub fn baseline() -> Self {
        CoreConfig {
            ruu_entries: 128,
            lsq_entries: 128,
            fetch_width: 8,
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            int_alu: 8,
            int_mult: 3,
            fp_alu: 6,
            fp_mult: 2,
            mem_units: 4,
            mispredict_penalty: 3,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any width or resource count is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fields = [
            ("ruu_entries", self.ruu_entries),
            ("lsq_entries", self.lsq_entries),
            ("fetch_width", self.fetch_width),
            ("decode_width", self.decode_width),
            ("issue_width", self.issue_width),
            ("commit_width", self.commit_width),
            ("int_alu", self.int_alu),
            ("int_mult", self.int_mult),
            ("fp_alu", self.fp_alu),
            ("fp_mult", self.fp_mult),
            ("mem_units", self.mem_units),
        ];
        for (name, v) in fields {
            if v == 0 {
                return Err(ConfigError::new(format!(
                    "core parameter {name} must be nonzero"
                )));
            }
        }
        Ok(())
    }
}

/// The four cache-model fidelity toggles the paper identified when
/// validating MicroLib against SimpleScalar (§2.2). All `true` is the
/// detailed MicroLib model; all `false` approximates SimpleScalar.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FidelityConfig {
    /// MSHR capacity is enforced (SimpleScalar's is unlimited).
    pub finite_mshr: bool,
    /// Cache-pipeline hazards stall requests (same-line different-address
    /// misses; MSHR busy one cycle after allocation).
    pub pipeline_stalls: bool,
    /// Cache stalls propagate back and stall the LSQ.
    pub lsq_backpressure: bool,
    /// Refills strictly consume a cache port.
    pub refill_uses_port: bool,
}

impl FidelityConfig {
    /// The detailed MicroLib model (all hazards modelled).
    pub fn microlib() -> Self {
        FidelityConfig {
            finite_mshr: true,
            pipeline_stalls: true,
            lsq_backpressure: true,
            refill_uses_port: true,
        }
    }

    /// The SimpleScalar-like idealized model (no hazards).
    pub fn simplescalar_like() -> Self {
        FidelityConfig {
            finite_mshr: false,
            pipeline_stalls: false,
            lsq_backpressure: false,
            refill_uses_port: false,
        }
    }
}

/// Complete system configuration: core + hierarchy + memory + fidelity.
///
/// # Examples
///
/// ```
/// use microlib_model::SystemConfig;
///
/// let cfg = SystemConfig::baseline();
/// cfg.validate().expect("Table 1 configuration is self-consistent");
/// assert_eq!(cfg.l2.latency, 12);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct SystemConfig {
    /// Out-of-order core.
    pub core: CoreConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// L1↔L2 bus.
    pub l1_l2_bus: BusConfig,
    /// L2↔memory bus.
    pub memory_bus: BusConfig,
    /// Main-memory model.
    pub memory: MemoryModel,
    /// Cache-model fidelity toggles.
    pub fidelity: FidelityConfig,
}

impl SystemConfig {
    /// The full Table 1 baseline.
    pub fn baseline() -> Self {
        SystemConfig {
            core: CoreConfig::baseline(),
            l1d: CacheConfig::baseline_l1d(),
            l1i: CacheConfig::baseline_l1i(),
            l2: CacheConfig::baseline_l2(),
            l1_l2_bus: BusConfig::baseline_l1_l2(),
            memory_bus: BusConfig::baseline_memory(),
            memory: MemoryModel::Sdram(SdramConfig::baseline()),
            fidelity: FidelityConfig::microlib(),
        }
    }

    /// Baseline hierarchy but with the constant 70-cycle SimpleScalar memory
    /// (the validation setup of §2.2).
    pub fn baseline_constant_memory() -> Self {
        SystemConfig {
            memory: MemoryModel::simplescalar_70(),
            ..Self::baseline()
        }
    }

    /// Validates every component configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in any component.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.core.validate()?;
        self.l1d.validate()?;
        self.l1i.validate()?;
        self.l2.validate()?;
        if self.l1d.line_bytes > self.l2.line_bytes {
            return Err(ConfigError::new(
                "L1 line size must not exceed L2 line size (inclusive fills)",
            ));
        }
        if let MemoryModel::Sdram(sdram) = &self.memory {
            sdram.validate()?;
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// An invalid configuration was supplied.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given explanation.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_1() {
        let cfg = SystemConfig::baseline();
        cfg.validate().unwrap();
        assert_eq!(cfg.core.ruu_entries, 128);
        assert_eq!(cfg.core.lsq_entries, 128);
        assert_eq!(cfg.core.fetch_width, 8);
        assert_eq!(cfg.l1d.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1d.assoc, 1);
        assert_eq!(cfg.l1d.line_bytes, 32);
        assert_eq!(cfg.l1d.ports, 4);
        assert_eq!(cfg.l1d.mshr_entries, 8);
        assert_eq!(cfg.l1d.mshr_reads_per_entry, 4);
        assert_eq!(cfg.l1d.latency, 1);
        assert_eq!(cfg.l1i.assoc, 4);
        assert_eq!(cfg.l2.size_bytes, 1024 * 1024);
        assert_eq!(cfg.l2.assoc, 4);
        assert_eq!(cfg.l2.line_bytes, 64);
        assert_eq!(cfg.l2.ports, 1);
        assert_eq!(cfg.l2.latency, 12);
        assert_eq!(cfg.memory_bus.width_bytes, 64);
        assert_eq!(cfg.memory_bus.cpu_cycles_per_beat, 5);
        match cfg.memory {
            MemoryModel::Sdram(s) => {
                assert_eq!(s.banks, 4);
                assert_eq!(s.rows, 8192);
                assert_eq!(s.columns, 1024);
                assert_eq!(s.t_rrd, 20);
                assert_eq!(s.t_ras, 80);
                assert_eq!(s.t_rcd, 30);
                assert_eq!(s.cas, 30);
                assert_eq!(s.t_rp, 30);
                assert_eq!(s.t_rc, 110);
                assert_eq!(s.queue_entries, 32);
            }
            _ => panic!("baseline memory must be SDRAM"),
        }
    }

    #[test]
    fn cache_geometry_derivation() {
        let l1 = CacheConfig::baseline_l1d();
        assert_eq!(l1.lines(), 1024);
        assert_eq!(l1.ways(), 1);
        assert_eq!(l1.sets(), 1024);
        let l2 = CacheConfig::baseline_l2();
        assert_eq!(l2.lines(), 16384);
        assert_eq!(l2.ways(), 4);
        assert_eq!(l2.sets(), 4096);
        let fa = CacheConfig {
            assoc: 0,
            size_bytes: 512,
            ..CacheConfig::baseline_l1d()
        };
        assert_eq!(fa.ways(), 16);
        assert_eq!(fa.sets(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut bad = CacheConfig::baseline_l1d();
        bad.line_bytes = 48;
        assert!(bad.validate().is_err());

        let mut bad = CacheConfig::baseline_l1d();
        bad.size_bytes = 1000;
        assert!(bad.validate().is_err());

        let mut bad = CacheConfig::baseline_l1d();
        bad.ports = 0;
        assert!(bad.validate().is_err());

        let mut bad = SdramConfig::baseline();
        bad.t_rc = 10;
        assert!(bad.validate().is_err());

        let mut bad = CoreConfig::baseline();
        bad.issue_width = 0;
        assert!(bad.validate().is_err());

        let mut bad_sys = SystemConfig::baseline();
        bad_sys.l1d.line_bytes = 64;
        bad_sys.l2.line_bytes = 32;
        assert!(bad_sys.validate().is_err());
    }

    #[test]
    fn bus_arithmetic() {
        let mem = BusConfig::baseline_memory();
        assert_eq!(mem.beats_for(64), 1);
        assert_eq!(mem.cycles_for(64), 5);
        let l1l2 = BusConfig::baseline_l1_l2();
        assert_eq!(l1l2.cycles_for(64), 2);
        assert_eq!(l1l2.cycles_for(32), 1);
        assert_eq!(l1l2.cycles_for(33), 2);
    }

    #[test]
    fn fidelity_presets() {
        let detailed = FidelityConfig::microlib();
        assert!(detailed.finite_mshr && detailed.pipeline_stalls);
        assert!(detailed.lsq_backpressure && detailed.refill_uses_port);
        let ideal = FidelityConfig::simplescalar_like();
        assert!(!ideal.finite_mshr && !ideal.pipeline_stalls);
        assert!(!ideal.lsq_backpressure && !ideal.refill_uses_port);
    }

    #[test]
    fn memory_model_labels() {
        assert_eq!(MemoryModel::simplescalar_70().label(), "constant-70");
        assert_eq!(
            MemoryModel::Sdram(SdramConfig::baseline()).label(),
            "sdram-170"
        );
        assert_eq!(
            MemoryModel::Sdram(SdramConfig::scaled_to_70_cycles()).label(),
            "sdram-70"
        );
    }

    #[test]
    fn scaled_sdram_is_faster() {
        let base = SdramConfig::baseline();
        let fast = SdramConfig::scaled_to_70_cycles();
        fast.validate().unwrap();
        assert!(fast.cas < base.cas);
        assert!(fast.t_rc < base.t_rc);
    }

    #[test]
    fn config_error_display() {
        let e = ConfigError::new("boom");
        assert_eq!(e.to_string(), "invalid configuration: boom");
    }
}
