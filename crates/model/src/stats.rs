//! Statistics primitives shared across components: cache counters, memory
//! counters, and the derived metrics (IPC, miss ratio, speedup) the paper
//! reports.

use std::fmt;

/// Counters accumulated by one cache level.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Demand load accesses.
    pub loads: u64,
    /// Demand store accesses.
    pub stores: u64,
    /// Demand misses (loads + stores).
    pub misses: u64,
    /// Misses serviced by mechanism sidecar storage.
    pub sidecar_hits: u64,
    /// Misses merged into an existing MSHR entry.
    pub mshr_merges: u64,
    /// Cycles a request stalled because every MSHR was busy or full.
    pub mshr_full_stalls: u64,
    /// Cycles a request stalled on a cache-pipeline hazard.
    pub pipeline_stalls: u64,
    /// Cycles a request stalled because no port was free.
    pub port_stalls: u64,
    /// Lines filled (demand).
    pub demand_fills: u64,
    /// Lines filled (prefetch).
    pub prefetch_fills: u64,
    /// Prefetched lines that saw a later demand hit.
    pub useful_prefetches: u64,
    /// Dirty victims written back.
    pub writebacks: u64,
    /// Evictions of prefetched-but-never-used lines.
    pub useless_prefetch_evictions: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Demand miss ratio, if any access occurred.
    pub fn miss_ratio(&self) -> Option<f64> {
        let a = self.accesses();
        (a > 0).then(|| self.misses as f64 / a as f64)
    }

    /// Fraction of prefetch fills that turned out useful.
    pub fn prefetch_accuracy(&self) -> Option<f64> {
        (self.prefetch_fills > 0)
            .then(|| self.useful_prefetches as f64 / self.prefetch_fills as f64)
    }
}

/// Counters accumulated by the main-memory model.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MemoryStats {
    /// Requests serviced.
    pub requests: u64,
    /// Sum of request latencies (CPU cycles), for averaging.
    pub total_latency: u64,
    /// Row-buffer hits (SDRAM only).
    pub row_hits: u64,
    /// Row conflicts requiring precharge (SDRAM only).
    pub precharges: u64,
    /// Cycles the memory bus was busy.
    pub bus_busy_cycles: u64,
    /// Cycles at least one request waited in the controller queue.
    pub queue_wait_cycles: u64,
}

impl MemoryStats {
    /// Mean request latency in CPU cycles.
    pub fn average_latency(&self) -> Option<f64> {
        (self.requests > 0).then(|| self.total_latency as f64 / self.requests as f64)
    }

    /// Row-buffer hit ratio.
    pub fn row_hit_ratio(&self) -> Option<f64> {
        (self.requests > 0).then(|| self.row_hits as f64 / self.requests as f64)
    }
}

/// End-of-run performance summary for one simulation.
#[derive(Clone, Copy, Default, PartialEq, Debug)]
pub struct PerfSummary {
    /// Instructions committed.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
}

impl PerfSummary {
    /// Instructions per cycle.
    ///
    /// # Examples
    ///
    /// ```
    /// use microlib_model::PerfSummary;
    ///
    /// let p = PerfSummary { instructions: 300, cycles: 150 };
    /// assert!((p.ipc() - 2.0).abs() < 1e-12);
    /// ```
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of `self` relative to `baseline` (ratio of IPCs, the metric
    /// of Figs 2–4 and 6–11).
    pub fn speedup_over(&self, baseline: &PerfSummary) -> f64 {
        let base = baseline.ipc();
        if base == 0.0 {
            0.0
        } else {
            self.ipc() / base
        }
    }
}

impl fmt::Display for PerfSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions in {} cycles (IPC {:.3})",
            self.instructions,
            self.cycles,
            self.ipc()
        )
    }
}

/// Geometric mean of a slice of positive values (used for speedup averages
/// where indicated; the paper's averages over benchmarks are arithmetic,
/// which [`mean`] provides).
///
/// # Examples
///
/// ```
/// use microlib_model::stats::{geometric_mean, mean};
///
/// assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
/// assert!((mean(&[1.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean of a slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Sample standard deviation of a slice (n−1 denominator).
pub fn std_dev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

/// Weighted arithmetic mean of `(weight, value)` pairs.
///
/// Returns `None` for an empty slice or non-positive total weight.
///
/// # Examples
///
/// ```
/// use microlib_model::stats::weighted_mean;
///
/// let m = weighted_mean(&[(0.75, 2.0), (0.25, 6.0)]).unwrap();
/// assert!((m - 3.0).abs() < 1e-12);
/// ```
pub fn weighted_mean(pairs: &[(f64, f64)]) -> Option<f64> {
    let total: f64 = pairs.iter().map(|(w, _)| w).sum();
    if pairs.is_empty() || total <= 0.0 {
        return None;
    }
    Some(pairs.iter().map(|(w, v)| w * v).sum::<f64>() / total)
}

/// Weighted population standard deviation of `(weight, value)` pairs —
/// the dispersion of the values around their [`weighted_mean`].
///
/// Returns `None` under the same conditions as [`weighted_mean`].
pub fn weighted_std_dev(pairs: &[(f64, f64)]) -> Option<f64> {
    let m = weighted_mean(pairs)?;
    let total: f64 = pairs.iter().map(|(w, _)| w).sum();
    let var = pairs
        .iter()
        .map(|(w, v)| w * (v - m) * (v - m))
        .sum::<f64>()
        / total;
    Some(var.sqrt())
}

/// Relative margin added to the sampling error bound to cover the error
/// sources the between-cluster dispersion cannot see: the representative
/// interval deviating from its cluster mean, pipeline fill/drain at slice
/// boundaries, and extrapolation over a partial trailing interval.
pub const WITHIN_CLUSTER_MARGIN: f64 = 0.02;

/// One simulated representative interval of a sampled run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SampledPoint {
    /// Interval index within the sampled region (0 = the first interval
    /// after the region start).
    pub interval: usize,
    /// Cluster weight (fraction of all profiled intervals this point
    /// stands for; weights over a run sum to 1).
    pub weight: f64,
    /// Cycles per instruction measured over the interval's detailed slice.
    pub cpi: f64,
}

/// How a sampled run's whole-window estimate was reconstructed: the
/// simulated representative intervals, the weighted-CPI estimate, and a
/// heuristic error bound.
///
/// The bound is the weighted between-cluster standard deviation of the
/// per-interval CPIs plus [`WITHIN_CLUSTER_MARGIN`] of the estimate —
/// clusters that disagree strongly make the extrapolation less
/// trustworthy, and the margin covers within-cluster variation that
/// simulating one representative per cluster cannot measure. It is a
/// reported confidence figure, not a statistical guarantee.
///
/// # Examples
///
/// ```
/// use microlib_model::stats::{SampledPoint, SamplingEstimate};
///
/// let est = SamplingEstimate::from_points(vec![
///     SampledPoint { interval: 1, weight: 0.5, cpi: 1.0 },
///     SampledPoint { interval: 6, weight: 0.5, cpi: 3.0 },
/// ]);
/// assert!((est.cpi - 2.0).abs() < 1e-12);
/// assert!(est.cpi_error_bound >= 1.0, "clusters disagree by ±1 CPI");
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct SamplingEstimate {
    /// The simulated representative intervals, in interval order.
    pub points: Vec<SampledPoint>,
    /// Weighted whole-window CPI estimate.
    pub cpi: f64,
    /// Absolute CPI error bound on the estimate (see the type docs).
    pub cpi_error_bound: f64,
}

impl SamplingEstimate {
    /// Builds the estimate from simulated points (weighted mean + bound).
    pub fn from_points(points: Vec<SampledPoint>) -> Self {
        let pairs: Vec<(f64, f64)> = points.iter().map(|p| (p.weight, p.cpi)).collect();
        let cpi = weighted_mean(&pairs).unwrap_or(0.0);
        let spread = weighted_std_dev(&pairs).unwrap_or(0.0);
        SamplingEstimate {
            points,
            cpi,
            cpi_error_bound: spread + WITHIN_CLUSTER_MARGIN * cpi,
        }
    }

    /// The error bound relative to the estimate (e.g. `0.03` = ±3%).
    pub fn relative_error_bound(&self) -> f64 {
        if self.cpi == 0.0 {
            0.0
        } else {
            self.cpi_error_bound / self.cpi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_ratios() {
        let s = CacheStats {
            loads: 60,
            stores: 40,
            misses: 25,
            prefetch_fills: 10,
            useful_prefetches: 4,
            ..CacheStats::default()
        };
        assert_eq!(s.accesses(), 100);
        assert!((s.miss_ratio().unwrap() - 0.25).abs() < 1e-12);
        assert!((s.prefetch_accuracy().unwrap() - 0.4).abs() < 1e-12);
        assert!(CacheStats::default().miss_ratio().is_none());
    }

    #[test]
    fn memory_stats_latency() {
        let s = MemoryStats {
            requests: 4,
            total_latency: 700,
            row_hits: 1,
            ..MemoryStats::default()
        };
        assert!((s.average_latency().unwrap() - 175.0).abs() < 1e-12);
        assert!((s.row_hit_ratio().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perf_summary_speedup() {
        let base = PerfSummary {
            instructions: 1000,
            cycles: 1000,
        };
        let fast = PerfSummary {
            instructions: 1000,
            cycles: 500,
        };
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((base.speedup_over(&base) - 1.0).abs() < 1e-12);
        assert_eq!(PerfSummary::default().ipc(), 0.0);
    }

    #[test]
    fn weighted_stats() {
        assert!(weighted_mean(&[]).is_none());
        assert!(weighted_mean(&[(0.0, 1.0)]).is_none());
        let pairs = [(0.25, 4.0), (0.75, 8.0)];
        assert!((weighted_mean(&pairs).unwrap() - 7.0).abs() < 1e-12);
        // Spread of {4 (w .25), 8 (w .75)} around 7: sqrt(.25*9 + .75*1) = sqrt(3).
        assert!((weighted_std_dev(&pairs).unwrap() - 3.0_f64.sqrt()).abs() < 1e-12);
        // Unnormalized weights are normalized.
        let scaled = [(1.0, 4.0), (3.0, 8.0)];
        assert!((weighted_mean(&scaled).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_estimate_single_point_has_floor_bound() {
        let est = SamplingEstimate::from_points(vec![SampledPoint {
            interval: 3,
            weight: 1.0,
            cpi: 2.0,
        }]);
        assert!((est.cpi - 2.0).abs() < 1e-12);
        assert!((est.cpi_error_bound - WITHIN_CLUSTER_MARGIN * 2.0).abs() < 1e-12);
        assert!((est.relative_error_bound() - WITHIN_CLUSTER_MARGIN).abs() < 1e-12);
    }

    #[test]
    fn means() {
        assert!(mean(&[]).is_none());
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[0.0]).is_none());
        assert!((mean(&[2.0, 4.0]).unwrap() - 3.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!(std_dev(&[1.0]).is_none());
        assert!((std_dev(&[1.0, 3.0]).unwrap() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
