//! # microlib-model
//!
//! Shared vocabulary of the MicroLib reproduction (Gracia Pérez, Mouchard,
//! Temam — *MicroLib: A Case for the Quantitative Comparison of
//! Micro-Architecture Mechanisms*, MICRO 2004).
//!
//! This crate defines everything a simulator component and a cache
//! *mechanism* need to talk to each other without depending on each other's
//! implementation — the library's modularity argument in type form:
//!
//! - value types: [`Addr`], [`Cycle`], [`LineData`], [`AccessKind`];
//! - cache↔mechanism events: [`AccessEvent`], [`EvictEvent`],
//!   [`RefillEvent`], [`ProbeResult`], [`PrefetchQueue`];
//! - the [`Mechanism`] trait itself plus [`HardwareBudget`] for cost models;
//! - configuration for every component, defaulting to the paper's Table 1
//!   ([`SystemConfig::baseline`]);
//! - statistics primitives ([`CacheStats`], [`MemoryStats`],
//!   [`PerfSummary`]).
//!
//! # Examples
//!
//! ```
//! use microlib_model::{PerfSummary, SystemConfig};
//!
//! let cfg = SystemConfig::baseline();
//! assert_eq!(cfg.l1d.size_bytes, 32 * 1024);
//!
//! let run = PerfSummary { instructions: 1_000, cycles: 800 };
//! assert!(run.ipc() > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod config;
pub mod event;
pub mod mechanism;
pub mod stats;
pub mod types;

pub use codec::{BinCodec, CodecError, Decoder, Encoder};
pub use config::{
    AllocPolicy, BankInterleave, BusConfig, CacheConfig, ConfigError, CoreConfig, FidelityConfig,
    MemoryModel, Replacement, SdramConfig, SdramSchedule, SystemConfig, WritePolicy,
};
pub use event::{
    AccessEvent, AccessOutcome, EvictEvent, PrefetchDestination, PrefetchQueue, PrefetchQueueStats,
    PrefetchRequest, ProbeResult, RefillCause, RefillEvent, Spill, VictimAction,
};
pub use mechanism::{BaseMechanism, HardwareBudget, Mechanism, MechanismStats, SramTable};
pub use stats::{CacheStats, MemoryStats, PerfSummary, SampledPoint, SamplingEstimate};
pub use types::{AccessKind, Addr, AttachPoint, Cycle, LineData};
