//! The [`Mechanism`] trait — MicroLib's unit of modularity — plus the
//! hardware-budget descriptors consumed by the cost/power models.

use crate::event::{
    AccessEvent, EvictEvent, PrefetchQueue, ProbeResult, RefillEvent, Spill, VictimAction,
};
use crate::types::{Addr, AttachPoint, Cycle};

/// A hardware data-cache optimization that plugs into a cache level.
///
/// This trait is the library's unit of exchange: every mechanism from the
/// MICRO 2004 study implements it, and downstream users add their own
/// mechanisms the same way (see the `custom_mechanism` example). It is
/// deliberately object-safe (C-OBJECT): systems hold `Box<dyn Mechanism>`.
///
/// The cache calls the hooks in a fixed per-access order:
///
/// 1. [`probe`](Mechanism::probe) — only on a cache miss, to let sidecar
///    storage (victim caches, prefetch buffers) service it;
/// 2. [`on_access`](Mechanism::on_access) — always, with the final outcome;
/// 3. [`on_evict`](Mechanism::on_evict) — when a victim is displaced;
/// 4. [`on_refill`](Mechanism::on_refill) — when the fill returns, carrying
///    the line's data words;
/// 5. [`tick`](Mechanism::tick) — once per cycle.
///
/// Prefetch requests go through the bounded [`PrefetchQueue`] handed to the
/// hooks; the cache controller drains it only when the downstream path is
/// idle, so demand requests always win (paper §3.4).
///
/// # Examples
///
/// A trivial next-line prefetcher:
///
/// ```
/// use microlib_model::{
///     AccessEvent, AccessOutcome, AttachPoint, HardwareBudget, Mechanism,
///     PrefetchDestination, PrefetchQueue, PrefetchRequest,
/// };
///
/// struct NextLine {
///     line_bytes: u64,
/// }
///
/// impl Mechanism for NextLine {
///     fn name(&self) -> &str {
///         "next-line"
///     }
///     fn attach_point(&self) -> AttachPoint {
///         AttachPoint::L2Unified
///     }
///     fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue) {
///         if event.outcome == AccessOutcome::Miss {
///             prefetch.push(PrefetchRequest {
///                 line: event.line.offset(self.line_bytes as i64),
///                 destination: PrefetchDestination::Cache,
///             });
///         }
///     }
///     fn hardware(&self) -> HardwareBudget {
///         HardwareBudget::none("next-line")
///     }
/// }
/// ```
pub trait Mechanism {
    /// Short identifier, e.g. `"GHB"`.
    fn name(&self) -> &str;

    /// The cache level this mechanism observes.
    fn attach_point(&self) -> AttachPoint;

    /// Observes a demand access and may enqueue prefetches.
    fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue);

    /// Offered an evicted line; return [`VictimAction::Captured`] to take it.
    fn on_evict(&mut self, event: &EvictEvent) -> VictimAction {
        let _ = event;
        VictimAction::Dropped
    }

    /// Observes a line fill (with data) and may enqueue prefetches.
    fn on_refill(&mut self, event: &RefillEvent, prefetch: &mut PrefetchQueue) {
        let _ = (event, prefetch);
    }

    /// On a cache miss, may supply the line from sidecar storage.
    ///
    /// Returning `Some` turns the miss into a sidecar hit; the mechanism
    /// must forget its copy (the cache now owns it).
    fn probe(&mut self, line: Addr, now: Cycle) -> Option<ProbeResult> {
        let _ = (line, now);
        None
    }

    /// Non-destructive sidecar occupancy check: whether the mechanism
    /// already holds `line`. The cache controller uses it to drop
    /// prefetches for lines the sidecar already owns.
    fn holds(&self, line: Addr) -> bool {
        let _ = line;
        false
    }

    /// Called once per simulated cycle for time-based state (timekeeping
    /// decay counters and the like).
    fn tick(&mut self, now: Cycle) {
        let _ = now;
    }

    /// Capacity of the prefetch request queue the cache controller creates
    /// for this mechanism (Table 3's "Request Queue Size").
    fn request_queue_capacity(&self) -> usize {
        16
    }

    /// Hands back dirty lines displaced from sidecar storage. Called once
    /// per cycle; the controller converts each [`Spill`] into a writeback,
    /// so mechanisms never silently lose dirty data.
    fn drain_spills(&mut self) -> Vec<Spill> {
        Vec::new()
    }

    /// Whether this mechanism's functional-warmup effects are fully
    /// described by the event stream the warm phase fires (accesses,
    /// evictions, refills, probes, ticks).
    ///
    /// Returning `true` lets the simulator restore a shared
    /// mechanism-independent warm checkpoint and replay only the recorded
    /// events into this mechanism, instead of re-running the whole warm
    /// phase per (benchmark × mechanism) cell. A mechanism may opt in
    /// **only if** during warmup it never returns `Some` from
    /// [`probe`](Mechanism::probe), never returns
    /// [`VictimAction::Captured`] from [`on_evict`](Mechanism::on_evict)
    /// and never reports spills — i.e. it observes the warm phase without
    /// perturbing cache or memory contents. Pure prefetchers and eviction
    /// observers qualify; sidecar stores (victim caches and kin) do not.
    ///
    /// Defaults to `false`, which is always correct (the simulator then
    /// runs the exact per-mechanism warm path).
    fn warm_events_only(&self) -> bool {
        false
    }

    /// Describes the mechanism's added hardware for the cost/power models.
    fn hardware(&self) -> HardwareBudget;

    /// Activity counters accumulated so far.
    fn stats(&self) -> MechanismStats {
        MechanismStats::default()
    }

    /// Clears all internal state (tables, sidecars, counters).
    fn reset(&mut self) {}
}

/// One SRAM structure added by a mechanism (an input row for the CACTI-like
/// area model and XCACTI-like energy model).
#[derive(Clone, Debug, PartialEq)]
pub struct SramTable {
    /// Human-readable name, e.g. `"correlation table"`.
    pub name: String,
    /// Number of entries.
    pub entries: u64,
    /// Bits per entry (tag + payload + state).
    pub entry_bits: u64,
    /// Associativity; `0` means fully associative.
    pub assoc: u32,
    /// Read/write port count.
    pub ports: u32,
}

impl SramTable {
    /// Creates a table descriptor.
    pub fn new(name: impl Into<String>, entries: u64, entry_bits: u64, assoc: u32) -> Self {
        SramTable {
            name: name.into(),
            entries,
            entry_bits,
            assoc,
            ports: 1,
        }
    }

    /// Total storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.entries * self.entry_bits
    }

    /// Total storage in bytes (rounded up).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }
}

/// The complete hardware inventory a mechanism adds next to the base cache.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HardwareBudget {
    /// Mechanism name this budget belongs to.
    pub mechanism: String,
    /// SRAM structures.
    pub tables: Vec<SramTable>,
}

impl HardwareBudget {
    /// A budget with no added storage (e.g. tagged prefetching's single tag
    /// bit per line is accounted as zero-cost, matching the paper's Fig 5
    /// where TP incurs "almost no additional cost").
    pub fn none(mechanism: impl Into<String>) -> Self {
        HardwareBudget {
            mechanism: mechanism.into(),
            tables: Vec::new(),
        }
    }

    /// A budget made of the given tables.
    pub fn with_tables(mechanism: impl Into<String>, tables: Vec<SramTable>) -> Self {
        HardwareBudget {
            mechanism: mechanism.into(),
            tables,
        }
    }

    /// Sum of all table storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.tables.iter().map(SramTable::total_bits).sum()
    }

    /// Sum of all table storage in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }
}

/// Activity counters every mechanism accumulates; the power model multiplies
/// these by per-access energies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MechanismStats {
    /// Reads of mechanism tables (lookups).
    pub table_reads: u64,
    /// Writes/updates of mechanism tables.
    pub table_writes: u64,
    /// Prefetch requests the mechanism tried to enqueue.
    pub prefetches_requested: u64,
    /// Prefetched lines that were later demand-hit (useful prefetches).
    pub prefetches_useful: u64,
    /// Misses serviced from sidecar storage.
    pub sidecar_hits: u64,
    /// Sidecar probes that missed.
    pub sidecar_misses: u64,
    /// Victim lines captured into sidecar storage.
    pub victims_captured: u64,
}

impl MechanismStats {
    /// Fraction of sidecar probes that hit, if any occurred.
    pub fn sidecar_hit_ratio(&self) -> Option<f64> {
        let total = self.sidecar_hits + self.sidecar_misses;
        (total > 0).then(|| self.sidecar_hits as f64 / total as f64)
    }
}

/// The no-op mechanism: the paper's "Base" configuration.
///
/// # Examples
///
/// ```
/// use microlib_model::{AttachPoint, BaseMechanism, Mechanism};
///
/// let base = BaseMechanism::default();
/// assert_eq!(base.name(), "Base");
/// assert_eq!(base.hardware().total_bits(), 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaseMechanism;

impl BaseMechanism {
    /// Creates the base (empty) mechanism.
    pub fn new() -> Self {
        BaseMechanism
    }
}

impl Mechanism for BaseMechanism {
    fn name(&self) -> &str {
        "Base"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L1Data
    }

    fn on_access(&mut self, _event: &AccessEvent, _prefetch: &mut PrefetchQueue) {}

    fn warm_events_only(&self) -> bool {
        true // observes nothing, perturbs nothing
    }

    fn hardware(&self) -> HardwareBudget {
        HardwareBudget::none("Base")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessOutcome, PrefetchDestination, PrefetchRequest};
    use crate::types::AccessKind;

    #[test]
    fn sram_table_sizes() {
        let t = SramTable::new("t", 1024, 48, 4);
        assert_eq!(t.total_bits(), 49152);
        assert_eq!(t.total_bytes(), 6144);
    }

    #[test]
    fn budget_totals() {
        let b = HardwareBudget::with_tables(
            "m",
            vec![SramTable::new("a", 10, 8, 1), SramTable::new("b", 3, 3, 1)],
        );
        assert_eq!(b.total_bits(), 89);
        assert_eq!(b.total_bytes(), 12);
        assert_eq!(HardwareBudget::none("x").total_bits(), 0);
    }

    #[test]
    fn base_mechanism_is_inert() {
        let mut base = BaseMechanism::new();
        let mut q = PrefetchQueue::new(4);
        let ev = AccessEvent {
            now: Cycle::ZERO,
            pc: Addr::new(0x400000),
            addr: Addr::new(0x1000),
            line: Addr::new(0x1000),
            kind: AccessKind::Load,
            outcome: AccessOutcome::Miss,
            first_touch_of_prefetch: false,
            value: Some(7),
        };
        base.on_access(&ev, &mut q);
        assert!(q.is_empty());
        assert!(base.probe(Addr::new(0x1000), Cycle::ZERO).is_none());
        assert_eq!(
            base.on_evict(&EvictEvent {
                now: Cycle::ZERO,
                line: Addr::new(0x1000),
                dirty: true,
                data: crate::LineData::zeroed(4),
                untouched_prefetch: false,
            }),
            VictimAction::Dropped
        );
        assert_eq!(base.stats(), MechanismStats::default());
    }

    #[test]
    fn mechanism_is_object_safe() {
        let boxed: Box<dyn Mechanism> = Box::new(BaseMechanism::new());
        assert_eq!(boxed.name(), "Base");
        let _ = PrefetchRequest {
            line: Addr::new(64),
            destination: PrefetchDestination::Buffer,
        };
    }

    #[test]
    fn stats_hit_ratio() {
        let mut s = MechanismStats::default();
        assert!(s.sidecar_hit_ratio().is_none());
        s.sidecar_hits = 3;
        s.sidecar_misses = 1;
        assert!((s.sidecar_hit_ratio().unwrap() - 0.75).abs() < 1e-12);
    }
}
