//! A small, std-only binary codec for persisting simulation artifacts.
//!
//! The on-disk artifact cache (`microlib`'s `ArtifactStore` disk tier)
//! needs to serialize result memos, sampling plans and warm-state
//! checkpoints without pulling in serde — the build environment is
//! offline, so everything here is hand-rolled and deliberately boring:
//!
//! - fixed-width **little-endian** integers ([`Encoder::put_u64`] and
//!   friends), `f64` via [`f64::to_bits`] (bit-exact round trips, the
//!   byte-identical-results requirement);
//! - length-prefixed strings and sequences;
//! - a [`BinCodec`] trait implemented by every persisted type, composing
//!   structurally (a struct encodes its fields in declaration order);
//! - an [`fnv1a`] checksum helper for the container format.
//!
//! Decoding never panics and never trusts its input: every read is
//! bounds-checked and returns a [`CodecError`] on truncated or
//! nonsensical bytes, so a corrupt cache entry degrades to a cache miss,
//! not a crash. Encoded byte streams are deterministic functions of the
//! value (collections are encoded in a canonical order by their owners).
//!
//! The container framing (magic, format version, checksum placement)
//! lives with the disk tier, not here; this module is only the value
//! encoding.

use std::fmt;

/// Why a decode failed. All variants mean the same thing to a cache: the
/// entry is unusable and must be recomputed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The input ended before the value did.
    Truncated,
    /// The container magic did not match.
    BadMagic,
    /// The container was written by a different format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The container checksum did not match its contents.
    BadChecksum,
    /// The bytes decoded but described an impossible value.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("truncated input"),
            CodecError::BadMagic => f.write_str("bad magic"),
            CodecError::BadVersion { found, expected } => {
                write!(f, "format version {found} (expected {expected})")
            }
            CodecError::BadChecksum => f.write_str("checksum mismatch"),
            CodecError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// 64-bit FNV-1a over `bytes` — the checksum of cache containers. Not
/// cryptographic; it only needs to catch truncation and bit rot.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// An append-only byte sink with typed writers.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// A bounds-checked cursor over encoded bytes.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the input is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the input is exhausted.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the input is exhausted.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` (stored as `u64`; rejects values that do not fit).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] on exhausted input,
    /// [`CodecError::Invalid`] if the value overflows `usize`.
    pub fn take_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.take_u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// Reads a bool (one byte; anything but `0`/`1` is invalid).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] on exhausted input,
    /// [`CodecError::Invalid`] on a byte that is not `0` or `1`.
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte")),
        }
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the input is exhausted.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed byte slice.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the prefix or payload is cut short.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.take_usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] on short input, [`CodecError::Invalid`]
    /// on non-UTF-8 bytes.
    pub fn take_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.take_bytes()?).map_err(|_| CodecError::Invalid("utf-8"))
    }

    /// Asserts the input was fully consumed (trailing garbage is how a
    /// wrong-length container manifests).
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] if bytes remain.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Invalid("trailing bytes"))
        }
    }
}

/// A value with a canonical binary encoding. Implementations come in
/// pairs that must round-trip exactly: `decode(encode(v)) == v`.
pub trait BinCodec: Sized {
    /// Appends the value's canonical encoding to `e`.
    fn encode(&self, e: &mut Encoder);

    /// Reads one value from `d`.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] from the underlying reads; implementations must
    /// reject impossible values rather than construct them.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError>;
}

impl BinCodec for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        d.take_u64()
    }
}

impl BinCodec for f64 {
    fn encode(&self, e: &mut Encoder) {
        e.put_f64(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        d.take_f64()
    }
}

impl BinCodec for bool {
    fn encode(&self, e: &mut Encoder) {
        e.put_bool(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        d.take_bool()
    }
}

impl BinCodec for usize {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        d.take_usize()
    }
}

impl BinCodec for String {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(d.take_str()?.to_owned())
    }
}

impl<T: BinCodec> BinCodec for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }
}

impl<T: BinCodec> BinCodec for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.len());
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = d.take_usize()?;
        // A corrupt length prefix must not preallocate gigabytes; grow as
        // decoding actually succeeds.
        let mut out = Vec::with_capacity(len.min(1_024));
        for _ in 0..len {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

// --- model value types ----------------------------------------------------

use crate::event::{
    AccessEvent, AccessOutcome, EvictEvent, PrefetchQueueStats, RefillCause, RefillEvent,
};
use crate::mechanism::{HardwareBudget, MechanismStats, SramTable};
use crate::stats::{CacheStats, MemoryStats, PerfSummary, SampledPoint, SamplingEstimate};
use crate::types::{AccessKind, Addr, AttachPoint, Cycle, LineData};

impl BinCodec for Addr {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.raw());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Addr::new(d.take_u64()?))
    }
}

impl BinCodec for Cycle {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.raw());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Cycle::new(d.take_u64()?))
    }
}

impl BinCodec for AccessKind {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(AccessKind::Load),
            1 => Ok(AccessKind::Store),
            _ => Err(CodecError::Invalid("access kind")),
        }
    }
}

impl BinCodec for AttachPoint {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            AttachPoint::L1Data => 0,
            AttachPoint::L2Unified => 1,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(AttachPoint::L1Data),
            1 => Ok(AttachPoint::L2Unified),
            _ => Err(CodecError::Invalid("attach point")),
        }
    }
}

impl BinCodec for AccessOutcome {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            AccessOutcome::Hit => 0,
            AccessOutcome::Miss => 1,
            AccessOutcome::SidecarHit => 2,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(AccessOutcome::Hit),
            1 => Ok(AccessOutcome::Miss),
            2 => Ok(AccessOutcome::SidecarHit),
            _ => Err(CodecError::Invalid("access outcome")),
        }
    }
}

impl BinCodec for RefillCause {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            RefillCause::Demand => 0,
            RefillCause::Prefetch => 1,
            RefillCause::WritebackFromAbove => 2,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(RefillCause::Demand),
            1 => Ok(RefillCause::Prefetch),
            2 => Ok(RefillCause::WritebackFromAbove),
            _ => Err(CodecError::Invalid("refill cause")),
        }
    }
}

impl BinCodec for LineData {
    fn encode(&self, e: &mut Encoder) {
        let words = self.words();
        e.put_u8(words.len() as u8);
        for w in words {
            e.put_u64(*w);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = d.take_u8()? as usize;
        if len > LineData::MAX_WORDS {
            return Err(CodecError::Invalid("line length"));
        }
        let mut words = [0u64; LineData::MAX_WORDS];
        for w in words.iter_mut().take(len) {
            *w = d.take_u64()?;
        }
        Ok(LineData::from_words(&words[..len]))
    }
}

impl BinCodec for AccessEvent {
    fn encode(&self, e: &mut Encoder) {
        self.now.encode(e);
        self.pc.encode(e);
        self.addr.encode(e);
        self.line.encode(e);
        self.kind.encode(e);
        self.outcome.encode(e);
        e.put_bool(self.first_touch_of_prefetch);
        self.value.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(AccessEvent {
            now: Cycle::decode(d)?,
            pc: Addr::decode(d)?,
            addr: Addr::decode(d)?,
            line: Addr::decode(d)?,
            kind: AccessKind::decode(d)?,
            outcome: AccessOutcome::decode(d)?,
            first_touch_of_prefetch: d.take_bool()?,
            value: Option::decode(d)?,
        })
    }
}

impl BinCodec for EvictEvent {
    fn encode(&self, e: &mut Encoder) {
        self.now.encode(e);
        self.line.encode(e);
        e.put_bool(self.dirty);
        self.data.encode(e);
        e.put_bool(self.untouched_prefetch);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(EvictEvent {
            now: Cycle::decode(d)?,
            line: Addr::decode(d)?,
            dirty: d.take_bool()?,
            data: LineData::decode(d)?,
            untouched_prefetch: d.take_bool()?,
        })
    }
}

impl BinCodec for RefillEvent {
    fn encode(&self, e: &mut Encoder) {
        self.now.encode(e);
        self.line.encode(e);
        self.data.encode(e);
        self.cause.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(RefillEvent {
            now: Cycle::decode(d)?,
            line: Addr::decode(d)?,
            data: LineData::decode(d)?,
            cause: RefillCause::decode(d)?,
        })
    }
}

/// Encodes a struct of plain counters field by field (and decodes in the
/// same order). Field order is part of the format.
macro_rules! counter_codec {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl BinCodec for $ty {
            fn encode(&self, e: &mut Encoder) {
                $(e.put_u64(self.$field);)+
            }
            fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
                Ok($ty {
                    $($field: d.take_u64()?,)+
                })
            }
        }
    };
}

counter_codec!(CacheStats {
    loads,
    stores,
    misses,
    sidecar_hits,
    mshr_merges,
    mshr_full_stalls,
    pipeline_stalls,
    port_stalls,
    demand_fills,
    prefetch_fills,
    useful_prefetches,
    writebacks,
    useless_prefetch_evictions,
});

counter_codec!(MemoryStats {
    requests,
    total_latency,
    row_hits,
    precharges,
    bus_busy_cycles,
    queue_wait_cycles,
});

counter_codec!(PerfSummary {
    instructions,
    cycles,
});

counter_codec!(MechanismStats {
    table_reads,
    table_writes,
    prefetches_requested,
    prefetches_useful,
    sidecar_hits,
    sidecar_misses,
    victims_captured,
});

counter_codec!(PrefetchQueueStats {
    accepted,
    discarded,
    duplicates,
});

impl BinCodec for SampledPoint {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.interval);
        e.put_f64(self.weight);
        e.put_f64(self.cpi);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SampledPoint {
            interval: d.take_usize()?,
            weight: d.take_f64()?,
            cpi: d.take_f64()?,
        })
    }
}

impl BinCodec for SamplingEstimate {
    fn encode(&self, e: &mut Encoder) {
        self.points.encode(e);
        e.put_f64(self.cpi);
        e.put_f64(self.cpi_error_bound);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SamplingEstimate {
            points: Vec::decode(d)?,
            cpi: d.take_f64()?,
            cpi_error_bound: d.take_f64()?,
        })
    }
}

impl BinCodec for SramTable {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        e.put_u64(self.entries);
        e.put_u64(self.entry_bits);
        e.put_u32(self.assoc);
        e.put_u32(self.ports);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SramTable {
            name: d.take_str()?.to_owned(),
            entries: d.take_u64()?,
            entry_bits: d.take_u64()?,
            assoc: d.take_u32()?,
            ports: d.take_u32()?,
        })
    }
}

impl BinCodec for HardwareBudget {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.mechanism);
        self.tables.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(HardwareBudget {
            mechanism: d.take_str()?.to_owned(),
            tables: Vec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: BinCodec + PartialEq + std::fmt::Debug>(v: T) {
        let mut e = Encoder::new();
        v.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(T::decode(&mut d).unwrap(), v);
        d.finish().unwrap();
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(-0.0f64);
        round_trip(f64::NAN.to_bits()); // bit pattern survives as u64
        round_trip(String::from("swim|Ghb|seed=0xc0ffee"));
        round_trip(Some(42u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u64, 2, 3]);
    }

    #[test]
    fn value_types_round_trip() {
        round_trip(Addr::new(0x1234_5678));
        round_trip(Cycle::new(99));
        round_trip(AccessKind::Store);
        round_trip(AttachPoint::L2Unified);
        round_trip(AccessOutcome::SidecarHit);
        round_trip(RefillCause::WritebackFromAbove);
        round_trip(LineData::from_words(&[1, 2, 3, 4]));
        round_trip(LineData::zeroed(8));
        round_trip(CacheStats {
            loads: 1,
            stores: 2,
            misses: 3,
            ..CacheStats::default()
        });
        round_trip(PerfSummary {
            instructions: 100_000,
            cycles: 173_912,
        });
        round_trip(SamplingEstimate::from_points(vec![
            SampledPoint {
                interval: 1,
                weight: 0.5,
                cpi: 1.25,
            },
            SampledPoint {
                interval: 6,
                weight: 0.5,
                cpi: 3.5,
            },
        ]));
        round_trip(HardwareBudget::with_tables(
            "ghb",
            vec![SramTable::new("history buffer", 256, 64, 0)],
        ));
    }

    /// Events don't derive `PartialEq`; a decode → re-encode byte
    /// comparison proves the round trip instead (the encoding is
    /// canonical).
    fn round_trip_bytes<T: BinCodec>(v: T) {
        let mut e = Encoder::new();
        v.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = T::decode(&mut d).unwrap();
        d.finish().unwrap();
        let mut e2 = Encoder::new();
        back.encode(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn events_round_trip() {
        round_trip_bytes(AccessEvent {
            now: Cycle::new(10),
            pc: Addr::new(0x40_0000),
            addr: Addr::new(0x1008),
            line: Addr::new(0x1000),
            kind: AccessKind::Load,
            outcome: AccessOutcome::Miss,
            first_touch_of_prefetch: false,
            value: Some(7),
        });
        round_trip_bytes(EvictEvent {
            now: Cycle::new(11),
            line: Addr::new(0x2000),
            dirty: true,
            data: LineData::from_words(&[9, 9, 9, 9]),
            untouched_prefetch: false,
        });
        round_trip_bytes(RefillEvent {
            now: Cycle::new(12),
            line: Addr::new(0x3000),
            data: LineData::zeroed(4),
            cause: RefillCause::Prefetch,
        });
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut e = Encoder::new();
        PerfSummary {
            instructions: 5,
            cycles: 9,
        }
        .encode(&mut e);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert_eq!(
                PerfSummary::decode(&mut d).unwrap_err(),
                CodecError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn invalid_tags_are_rejected() {
        let mut d = Decoder::new(&[9]);
        assert!(matches!(
            AccessKind::decode(&mut d),
            Err(CodecError::Invalid(_))
        ));
        let mut d = Decoder::new(&[2]);
        assert!(matches!(
            Option::<u64>::decode(&mut d),
            Err(CodecError::Invalid(_))
        ));
        // A line longer than MAX_WORDS never decodes.
        let mut d = Decoder::new(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(
            LineData::decode(&mut d),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn corrupt_length_prefix_does_not_allocate() {
        // A Vec claiming u64::MAX elements must fail on the first element,
        // not try to reserve the capacity up front.
        let mut e = Encoder::new();
        e.put_u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(Vec::<u64>::decode(&mut d).is_err());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut d = Decoder::new(&[1, 2]);
        d.take_u8().unwrap();
        assert!(d.finish().is_err());
        d.take_u8().unwrap();
        d.finish().unwrap();
    }
}
