//! Fundamental value types shared by every MicroLib component.
//!
//! Everything here is a small `Copy` newtype ([`Addr`], [`Cycle`]) or a plain
//! enum; the newtypes exist so that byte addresses, line-aligned addresses
//! and cycle counts cannot be confused (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A byte address in the simulated 64-bit address space.
///
/// # Examples
///
/// ```
/// use microlib_model::Addr;
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(64), Addr::new(0x1200));
/// assert_eq!(a.offset_in_line(64), 0x34);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address. Loads from it are legal in the simulated machine
    /// (it reads as zero) but workloads use it as an end-of-list marker.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address of the first byte of the cache line containing
    /// `self`, for a line of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_bytes` is not a power of two.
    #[inline]
    pub fn line(self, line_bytes: u64) -> Addr {
        debug_assert!(line_bytes.is_power_of_two());
        Addr(self.0 & !(line_bytes - 1))
    }

    /// Returns the byte offset of `self` within its cache line.
    #[inline]
    pub fn offset_in_line(self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.0 & (line_bytes - 1)
    }

    /// Returns the 64-bit-word index of this address (i.e. `raw / 8`).
    #[inline]
    pub fn word_index(self) -> u64 {
        self.0 >> 3
    }

    /// Returns `self + bytes`, wrapping on overflow (the simulated address
    /// space is a flat 64-bit ring).
    #[inline]
    pub fn offset(self, bytes: i64) -> Addr {
        Addr(self.0.wrapping_add(bytes as u64))
    }

    /// Whether this is the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// A point in simulated time, measured in CPU cycles (2 GHz in the baseline
/// configuration; every component's timing is expressed in CPU cycles).
///
/// # Examples
///
/// ```
/// use microlib_model::Cycle;
///
/// let t = Cycle::new(100);
/// assert_eq!(t + 12, Cycle::new(112));
/// assert_eq!((t + 12) - t, 12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);
    /// The greatest representable time; used as "never".
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - earlier`, or 0 if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

/// Whether a memory access reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A data load.
    Load,
    /// A data store.
    Store,
}

impl AccessKind {
    /// Whether this is a store.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// The data contents of one cache line, as 64-bit words.
///
/// Lines in the baseline hierarchy are 32 bytes (L1) or 64 bytes (L2), so the
/// backing store holds up to eight words and remembers how many are valid.
///
/// # Examples
///
/// ```
/// use microlib_model::LineData;
///
/// let mut line = LineData::zeroed(4);
/// line.set_word(1, 0xdead_beef);
/// assert_eq!(line.words()[1], 0xdead_beef);
/// assert_eq!(line.byte_len(), 32);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct LineData {
    words: [u64; LineData::MAX_WORDS],
    len: u8,
}

impl LineData {
    /// Maximum number of 64-bit words a line can hold (64-byte L2 lines).
    pub const MAX_WORDS: usize = 8;

    /// Creates an all-zero line of `words` 64-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `words` exceeds [`LineData::MAX_WORDS`].
    pub fn zeroed(words: usize) -> Self {
        assert!(
            words <= Self::MAX_WORDS,
            "line of {words} words is too large"
        );
        LineData {
            words: [0; Self::MAX_WORDS],
            len: words as u8,
        }
    }

    /// Creates a line from a word slice.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` exceeds [`LineData::MAX_WORDS`].
    pub fn from_words(words: &[u64]) -> Self {
        let mut line = Self::zeroed(words.len());
        line.words[..words.len()].copy_from_slice(words);
        line
    }

    /// The valid words of the line.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words[..self.len as usize]
    }

    /// Number of valid 64-bit words.
    #[inline]
    pub fn word_len(&self) -> usize {
        self.len as usize
    }

    /// Size of the line in bytes.
    #[inline]
    pub fn byte_len(&self) -> u64 {
        (self.len as u64) * 8
    }

    /// Overwrites word `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn set_word(&mut self, index: usize, value: u64) {
        assert!(
            index < self.len as usize,
            "word index {index} out of bounds"
        );
        self.words[index] = value;
    }

    /// Reads word `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn word(&self, index: usize) -> u64 {
        assert!(
            index < self.len as usize,
            "word index {index} out of bounds"
        );
        self.words[index]
    }
}

/// Cache level at which a mechanism attaches (Table 2's "(L1)"/"(L2)").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AttachPoint {
    /// The L1 data cache.
    L1Data,
    /// The unified L2 cache.
    L2Unified,
}

impl fmt::Display for AttachPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttachPoint::L1Data => f.write_str("L1 data cache"),
            AttachPoint::L2Unified => f.write_str("unified L2 cache"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_alignment() {
        let a = Addr::new(0x12345);
        assert_eq!(a.line(32).raw(), 0x12340);
        assert_eq!(a.line(64).raw(), 0x12340);
        assert_eq!(Addr::new(0x12380).line(64).raw(), 0x12380);
        assert_eq!(a.offset_in_line(32), 5);
    }

    #[test]
    fn addr_offset_wraps() {
        assert_eq!(Addr::new(10).offset(-4).raw(), 6);
        assert_eq!(Addr::new(0).offset(-1).raw(), u64::MAX);
    }

    #[test]
    fn addr_word_index() {
        assert_eq!(Addr::new(0).word_index(), 0);
        assert_eq!(Addr::new(7).word_index(), 0);
        assert_eq!(Addr::new(8).word_index(), 1);
    }

    #[test]
    fn cycle_arithmetic() {
        let t = Cycle::new(5);
        assert_eq!((t + 7).raw(), 12);
        assert_eq!((t + 7) - t, 7);
        assert_eq!(t.since(Cycle::new(9)), 0);
        assert_eq!(Cycle::new(9).since(t), 4);
    }

    #[test]
    fn line_data_round_trip() {
        let mut line = LineData::zeroed(8);
        for i in 0..8 {
            line.set_word(i, i as u64 * 3);
        }
        assert_eq!(line.word(5), 15);
        assert_eq!(line.words().len(), 8);
        assert_eq!(line.byte_len(), 64);
        let copy = LineData::from_words(line.words());
        assert_eq!(copy, line);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn line_data_bounds_checked() {
        let line = LineData::zeroed(4);
        line.word(4);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", Addr::new(0)).is_empty());
        assert!(!format!("{:?}", Addr::new(0)).is_empty());
        assert!(!format!("{}", Cycle::ZERO).is_empty());
        assert!(!format!("{}", AccessKind::Load).is_empty());
        assert!(!format!("{}", AttachPoint::L1Data).is_empty());
    }
}
