//! Events delivered from a cache to the mechanism attached to it, and the
//! bounded prefetch request queue through which mechanisms answer back.
//!
//! The event vocabulary is the heart of MicroLib's modularity argument: a
//! mechanism only observes the cache through these value types, so any
//! mechanism can be plugged into any conforming cache model.

use crate::types::{AccessKind, Addr, Cycle, LineData};
#[cfg(doc)]
use crate::Mechanism;

/// Why an access was (or was not) satisfied by the cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessOutcome {
    /// The line was present in the cache proper.
    Hit,
    /// The line was absent; a fill from the next level is required.
    Miss,
    /// The line was absent from the cache but supplied by the mechanism's
    /// sidecar storage (victim cache, frequent-value cache, prefetch buffer).
    SidecarHit,
}

impl AccessOutcome {
    /// Whether the demand access found its data without going down a level.
    #[inline]
    pub fn is_satisfied(self) -> bool {
        !matches!(self, AccessOutcome::Miss)
    }
}

/// A demand access observed by the cache, delivered to
/// [`Mechanism::on_access`](crate::Mechanism::on_access()).
#[derive(Clone, Copy, Debug)]
pub struct AccessEvent {
    /// Current simulated time.
    pub now: Cycle,
    /// Program counter of the load/store instruction.
    pub pc: Addr,
    /// Full byte address accessed.
    pub addr: Addr,
    /// Line-aligned address (alignment of the observing cache).
    pub line: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Hit, miss, or sidecar hit.
    pub outcome: AccessOutcome,
    /// Whether the line hit was brought in by a prefetch and this is the
    /// first demand touch (tagged prefetching's trigger).
    pub first_touch_of_prefetch: bool,
    /// The 64-bit word at `addr` — loaded value for loads, stored value for
    /// stores. `None` when the observing cache level does not carry data
    /// (never the case in this library, but kept for wrapper models).
    pub value: Option<u64>,
}

/// A line leaving the cache, delivered to
/// [`Mechanism::on_evict`](crate::Mechanism::on_evict()).
#[derive(Clone, Copy, Debug)]
pub struct EvictEvent {
    /// Current simulated time.
    pub now: Cycle,
    /// Line-aligned address of the victim.
    pub line: Addr,
    /// Whether the victim was dirty (and is being written back).
    pub dirty: bool,
    /// The victim's data.
    pub data: LineData,
    /// Whether the victim had been brought in by a prefetch and never
    /// demand-touched (a useless prefetch).
    pub untouched_prefetch: bool,
}

/// What a mechanism did with an evicted line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VictimAction {
    /// The mechanism declined the victim; it proceeds down the hierarchy
    /// (writeback if dirty) as usual.
    Dropped,
    /// The mechanism captured the victim into its sidecar storage and now
    /// owns the only in-cache copy. Dirty data remains the mechanism's
    /// responsibility until it is re-probed or re-evicted from the sidecar.
    Captured,
}

/// Why a line is being filled into the cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RefillCause {
    /// A demand miss fill.
    Demand,
    /// A prefetch issued by the attached mechanism.
    Prefetch,
    /// A writeback arriving from the level above (L2 only).
    WritebackFromAbove,
}

/// A line entering the cache, delivered to
/// [`Mechanism::on_refill`](crate::Mechanism::on_refill()).
///
/// Carries the actual data words of the line, which is how content-directed
/// prefetching inspects fetched lines for pointers.
#[derive(Clone, Copy, Debug)]
pub struct RefillEvent {
    /// Current simulated time.
    pub now: Cycle,
    /// Line-aligned address being filled.
    pub line: Addr,
    /// The line's data words.
    pub data: LineData,
    /// Why the fill happened.
    pub cause: RefillCause,
}

/// A sidecar lookup answer: the mechanism holds the requested line and
/// surrenders it to the cache (victim-cache swap semantics).
#[derive(Clone, Copy, Debug)]
pub struct ProbeResult {
    /// The line's data.
    pub data: LineData,
    /// Whether the surrendered copy is dirty.
    pub dirty: bool,
    /// Extra cycles the sidecar lookup costs on top of the cache's hit
    /// latency (typically 1).
    pub extra_latency: u64,
}

/// A prefetch request produced by a mechanism.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PrefetchRequest {
    /// Line-aligned target address.
    pub line: Addr,
    /// Where the prefetched line should land.
    pub destination: PrefetchDestination,
}

/// Where a prefetched line is installed once it returns.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PrefetchDestination {
    /// Into the cache the mechanism is attached to.
    Cache,
    /// Into the mechanism's own prefetch buffer (probed on a miss), leaving
    /// the cache contents undisturbed — Markov prefetching's buffer.
    Buffer,
}

/// A dirty line leaving a mechanism's sidecar storage (e.g. a victim cache
/// replacing an old entry). The cache controller turns spills into ordinary
/// writebacks so no dirty data is ever lost.
#[derive(Clone, Copy, Debug)]
pub struct Spill {
    /// Line-aligned address.
    pub line: Addr,
    /// The line's data.
    pub data: LineData,
}

/// Bounded queue of pending prefetch requests (Table 3's "Request Queue
/// Size" parameter).
///
/// Mechanisms push requests; the cache controller pops them only when the
/// downstream path is idle, so demand traffic always has priority. When the
/// queue is full new requests are **discarded** — the paper (§3.4) calls out
/// this exact trade-off: a short queue loses prefetches, a long queue can
/// delay demand misses.
///
/// # Examples
///
/// ```
/// use microlib_model::{Addr, PrefetchDestination, PrefetchQueue, PrefetchRequest};
///
/// let mut q = PrefetchQueue::new(2);
/// let req = |a| PrefetchRequest {
///     line: Addr::new(a),
///     destination: PrefetchDestination::Cache,
/// };
/// assert!(q.push(req(0x100)));
/// assert!(q.push(req(0x140)));
/// assert!(!q.push(req(0x180))); // full: discarded
/// assert_eq!(q.stats().discarded, 1);
/// assert_eq!(q.pop().unwrap().line, Addr::new(0x100));
/// ```
#[derive(Clone, Debug)]
pub struct PrefetchQueue {
    capacity: usize,
    entries: std::collections::VecDeque<PrefetchRequest>,
    stats: PrefetchQueueStats,
}

/// Occupancy and loss statistics for a [`PrefetchQueue`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct PrefetchQueueStats {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests discarded because the queue was full.
    pub discarded: u64,
    /// Requests dropped because an identical line was already queued.
    pub duplicates: u64,
}

impl PrefetchQueue {
    /// Creates a queue with room for `capacity` pending requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch queue capacity must be positive");
        PrefetchQueue {
            capacity,
            entries: std::collections::VecDeque::with_capacity(capacity.min(256)),
            stats: PrefetchQueueStats::default(),
        }
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pending requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no requests are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enqueues `request`, returning `false` (and counting a discard) if the
    /// queue is full, or `false` (counting a duplicate) if the same line is
    /// already pending.
    pub fn push(&mut self, request: PrefetchRequest) -> bool {
        if self.entries.iter().any(|r| r.line == request.line) {
            self.stats.duplicates += 1;
            return false;
        }
        if self.entries.len() >= self.capacity {
            self.stats.discarded += 1;
            return false;
        }
        self.entries.push_back(request);
        self.stats.accepted += 1;
        true
    }

    /// Removes and returns the oldest pending request.
    pub fn pop(&mut self) -> Option<PrefetchRequest> {
        self.entries.pop_front()
    }

    /// Looks at the oldest pending request without removing it.
    pub fn peek(&self) -> Option<&PrefetchRequest> {
        self.entries.front()
    }

    /// Drops any pending request targeting `line` (demand access superseded
    /// the prefetch).
    pub fn cancel(&mut self, line: Addr) {
        self.entries.retain(|r| r.line != line);
    }

    /// Discards all pending requests.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Accepted/discarded/duplicate counters.
    #[inline]
    pub fn stats(&self) -> PrefetchQueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(a: u64) -> PrefetchRequest {
        PrefetchRequest {
            line: Addr::new(a),
            destination: PrefetchDestination::Cache,
        }
    }

    #[test]
    fn queue_respects_capacity() {
        let mut q = PrefetchQueue::new(3);
        assert!(q.push(req(0)));
        assert!(q.push(req(64)));
        assert!(q.push(req(128)));
        assert!(!q.push(req(192)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.stats().discarded, 1);
        assert_eq!(q.stats().accepted, 3);
    }

    #[test]
    fn queue_is_fifo() {
        let mut q = PrefetchQueue::new(4);
        q.push(req(1 << 6));
        q.push(req(2 << 6));
        assert_eq!(q.pop().unwrap().line.raw(), 1 << 6);
        assert_eq!(q.pop().unwrap().line.raw(), 2 << 6);
        assert!(q.pop().is_none());
    }

    #[test]
    fn queue_deduplicates() {
        let mut q = PrefetchQueue::new(4);
        assert!(q.push(req(64)));
        assert!(!q.push(req(64)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.stats().duplicates, 1);
    }

    #[test]
    fn queue_cancels_superseded_lines() {
        let mut q = PrefetchQueue::new(4);
        q.push(req(64));
        q.push(req(128));
        q.cancel(Addr::new(64));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek().unwrap().line.raw(), 128);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        PrefetchQueue::new(0);
    }

    #[test]
    fn outcome_satisfaction() {
        assert!(AccessOutcome::Hit.is_satisfied());
        assert!(AccessOutcome::SidecarHit.is_satisfied());
        assert!(!AccessOutcome::Miss.is_satisfied());
    }
}
