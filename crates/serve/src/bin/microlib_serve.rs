//! The `microlib-serve` daemon binary: campaign-as-a-service over the
//! artifact store (see the `microlib_serve` crate docs).
//!
//! ```text
//! microlib-serve [--addr HOST:PORT] [--threads N] [--queue-cap N]
//!                [--cache-dir DIR | --no-cache] [--resident-mb MB]
//! ```
//!
//! Environment: `MICROLIB_SERVE_RESIDENT_MB` caps resident warm-state
//! bytes (same as `--resident-mb`; the flag wins). SIGTERM/SIGINT drain
//! gracefully: in-flight cells finish, the memo journal is fsynced,
//! leases are released, then the process exits 0.

use microlib_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static DRAIN: AtomicBool = AtomicBool::new(false);

/// Registers SIGTERM/SIGINT handlers that flip [`DRAIN`]. The handler
/// body is a single atomic store — async-signal-safe. `signal(2)` is the
/// one foreign call in the workspace, hence the targeted lint override.
#[allow(unsafe_code)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: microlib-serve [--addr HOST:PORT] [--threads N] [--queue-cap N]\n\
         \x20                     [--cache-dir DIR | --no-cache] [--resident-mb MB]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig {
        cache_dir: Some(PathBuf::from(".microlib-cache")),
        ..ServerConfig::default()
    };
    if let Some(mib) = std::env::var("MICROLIB_SERVE_RESIDENT_MB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        config.resident_cap_bytes = Some(mib << 20);
    }
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_for(flag));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--threads" => config.threads = parse_or_usage(&value("--threads")),
            "--queue-cap" => config.queue_cap = parse_or_usage(&value("--queue-cap")),
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--no-cache" => config.cache_dir = None,
            "--resident-mb" => {
                config.resident_cap_bytes =
                    Some(parse_or_usage::<u64>(&value("--resident-mb")) << 20);
            }
            _ => usage(),
        }
    }
    install_signal_handlers();
    let mut server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("microlib-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("microlib-serve: listening on {}", server.addr());
    while !DRAIN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("microlib-serve: draining (finishing in-flight cells)");
    server.shutdown();
    eprintln!("microlib-serve: drained clean");
}

fn usage_for(flag: &str) -> String {
    eprintln!("microlib-serve: {flag} needs a value");
    usage();
}

fn parse_or_usage<T: std::str::FromStr>(value: &str) -> T {
    value.parse().unwrap_or_else(|_| usage())
}
