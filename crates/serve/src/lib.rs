//! # microlib-serve
//!
//! Campaign-as-a-service for MicroLib: a std-only HTTP/1.1 daemon that
//! turns the campaign engine into a query engine. Clients `POST` a
//! campaign spec — benchmarks × mechanisms × [`ConfigDelta`]-style
//! overrides × window/sampling mode — and the daemon streams one NDJSON
//! line per cell as it completes, answering from the same
//! [`ArtifactStore`](microlib::ArtifactStore) / disk-cache / lease stack
//! the batch binaries use.
//!
//! What the daemon adds on top of the store:
//!
//! - **single-flight**: identical concurrent cells are computed once per
//!   process (store-level coalescing) and once per *fleet* (PR-7 lease
//!   files, when a shared cache directory is configured);
//! - **admission control**: a bounded cell queue, interactive queries
//!   scheduled ahead of batch sweeps, overload answered with 429 +
//!   `Retry-After`;
//! - **resident artifacts**: hot `WarmState` artifacts stay in memory
//!   between requests under a byte-capped LRU
//!   (`MICROLIB_SERVE_RESIDENT_MB`);
//! - **telemetry**: `/metrics` exports stable hit/miss/coalesce/eviction
//!   counters, per-endpoint latency histograms, queue depth, in-flight
//!   cells and RSS; `/healthz` answers readiness;
//! - **graceful drain**: SIGTERM finishes in-flight cells, fsyncs the
//!   memo journal and releases every lease before exit.
//!
//! | Endpoint | Method | Purpose |
//! |---|---|---|
//! | `/campaign` | POST | submit a spec, stream NDJSON results |
//! | `/metrics`  | GET  | counters + histograms + gauges |
//! | `/healthz`  | GET  | readiness probe |
//!
//! [`ConfigDelta`]: microlib_miner::ConfigDelta

pub mod client;
pub mod json;
pub mod metrics;
pub mod server;
pub mod spec;

pub use client::{CampaignOutcome, Client, HttpResponse};
pub use metrics::{metric_value, rss_bytes, Metrics};
pub use server::{Server, ServerConfig};
pub use spec::{render_error, render_result, run_cell, CampaignSpec, CellSpec, Class};
