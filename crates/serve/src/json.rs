//! A minimal JSON reader/writer — just enough for campaign specs and
//! NDJSON result lines, std-only like the rest of the workspace.
//!
//! The parser is a plain recursive-descent over the RFC 8259 grammar;
//! numbers are held as `f64` (campaign specs never need more than 53
//! bits — seeds beyond that are passed as hex strings). Output goes the
//! other way through [`escape`], which produces the canonical minimal
//! escaping (`"`, `\`, control characters).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (specs are order-free).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.at));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if this is a non-negative integer
    /// (or a string holding one, decimal or `0x`-hex — the escape hatch
    /// for values beyond 53 bits).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            Json::Str(s) => match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            },
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.at) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.at) == Some(&byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(b) = self.bytes.get(self.at) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let escape = *self
                        .bytes
                        .get(self.at)
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.at += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.at))?;
                            self.at += 4;
                            // Surrogate pairs are rejected rather than
                            // combined: spec fields are ASCII in practice.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| "surrogate in \\u escape".to_owned())?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.at..];
                    let s = unsafe_free_utf8_prefix(rest);
                    out.push_str(s);
                    self.at += s.len();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

/// The longest prefix of `bytes` that is plain string content (stops at
/// `"`, `\` or end). Input comes from a `&str`, so slicing at these
/// ASCII delimiters keeps UTF-8 boundaries intact.
fn unsafe_free_utf8_prefix(bytes: &[u8]) -> &str {
    let end = bytes
        .iter()
        .position(|&b| b == b'"' || b == b'\\')
        .unwrap_or(bytes.len());
    std::str::from_utf8(&bytes[..end]).expect("slice of a str at ASCII delimiters")
}

/// Escapes `s` as the *contents* of a JSON string (no surrounding
/// quotes): `"`, `\` and control characters only — the minimal canonical
/// form, so equal strings always render equal bytes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spec_shapes() {
        let doc = r#"{"benchmarks":["swim","gcc"],"window":{"skip":2000,"simulate":2000},
                      "seed":"0xC0FFEE","deep":[1,2.5,-3,true,false,null],"s":"a\"b\\c\nd\u0041"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("benchmarks").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("window").unwrap().get("skip").unwrap().as_u64(),
            Some(2000)
        );
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(0xC0FFEE));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(
            v.get("deep").unwrap().as_arr().unwrap()[3],
            Json::Bool(true)
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\":}", "nul", "1 2", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(original));
    }
}
