//! Campaign specs and their canonical NDJSON result rendering.
//!
//! A spec names the (benchmark × mechanism) grid to run, plus the shared
//! knobs: a [`ConfigDelta`] override string, the trace window, the seed
//! and the sampling mode. [`CampaignSpec::parse`] reads the JSON wire
//! form; [`CampaignSpec::cells`] expands the grid in deterministic
//! (benchmark-major) order; [`render_result`] / [`render_error`] produce
//! the one-line-per-cell output — the *same* function renders the
//! daemon's streamed lines and the client's direct/local mode, which is
//! what makes byte-comparing the two a meaningful end-to-end check.

use crate::json::{escape, Json};
use microlib::{run_one_with, ArtifactStore, RunResult, SamplingMode, SimOptions};
use microlib_mech::MechanismKind;
use microlib_miner::ConfigDelta;
use microlib_model::SystemConfig;
use microlib_trace::{benchmarks, TraceWindow};
use std::sync::Arc;

/// Scheduling class of a campaign: interactive requests are served ahead
/// of batch sweeps when both are queued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Small, latency-sensitive query — scheduled first.
    Interactive,
    /// Large sweep — yields to interactive work.
    Batch,
}

/// Campaigns at most this many cells default to [`Class::Interactive`]
/// when the spec does not name a class.
pub const AUTO_INTERACTIVE_MAX: usize = 8;

/// A parsed campaign request: the grid plus shared run options.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Benchmarks (registry names), outer grid axis.
    pub benchmarks: Vec<&'static str>,
    /// Mechanisms, inner grid axis.
    pub mechanisms: Vec<MechanismKind>,
    /// The configuration the override string produced.
    pub config: Arc<SystemConfig>,
    /// Run options (window, seed, sampling) after overrides.
    pub opts: SimOptions,
    /// Scheduling class (explicit, or sized by `AUTO_INTERACTIVE_MAX`).
    pub class: Class,
}

/// One cell of an expanded campaign, tagged with its grid index so
/// streamed results can be re-ordered deterministically by the client.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Position in the spec's benchmark-major grid order.
    pub index: usize,
    /// Benchmark registry name.
    pub benchmark: &'static str,
    /// Mechanism to attach.
    pub mechanism: MechanismKind,
    /// System configuration (shared across the campaign).
    pub config: Arc<SystemConfig>,
    /// Run options (shared across the campaign).
    pub opts: SimOptions,
}

impl CampaignSpec {
    /// Parses the JSON wire form:
    ///
    /// ```json
    /// {
    ///   "benchmarks": ["swim", "gcc"],
    ///   "mechanisms": ["Base", "GHB"],
    ///   "overrides": "ruu=16,mem=const200",
    ///   "window": {"skip": 2000, "simulate": 2000},
    ///   "seed": "0xC0FFEE",
    ///   "sampling": "10000/4",
    ///   "class": "interactive"
    /// }
    /// ```
    ///
    /// `benchmarks` is required; everything else defaults (`mechanisms`
    /// to `"study"` — the paper's thirteen; `overrides` to `baseline`;
    /// window/seed to [`SimOptions::default`]; `sampling` to `full`;
    /// `class` to interactive for grids of at most
    /// [`AUTO_INTERACTIVE_MAX`] cells, batch above).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field — surfaced to
    /// HTTP clients as the 400 body.
    pub fn parse(text: &str) -> Result<CampaignSpec, String> {
        let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
        let benchmarks = doc
            .get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or("spec needs a \"benchmarks\" array")?
            .iter()
            .map(|b| {
                let name = b.as_str().ok_or("benchmarks must be strings")?;
                benchmarks::by_name(name)
                    .map(|p| p.name)
                    .ok_or_else(|| format!("unknown benchmark {name:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if benchmarks.is_empty() {
            return Err("\"benchmarks\" is empty".to_owned());
        }
        let mechanisms = match doc.get("mechanisms") {
            None => MechanismKind::study_set().to_vec(),
            Some(Json::Str(s)) if s == "study" => MechanismKind::study_set().to_vec(),
            Some(m) => {
                let names = m
                    .as_arr()
                    .ok_or("mechanisms must be an array or \"study\"")?;
                let parsed = names
                    .iter()
                    .map(|m| {
                        let acronym = m.as_str().ok_or("mechanisms must be strings")?;
                        MechanismKind::by_acronym(acronym)
                            .ok_or_else(|| format!("unknown mechanism {acronym:?}"))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                if parsed.is_empty() {
                    return Err("\"mechanisms\" is empty".to_owned());
                }
                parsed
            }
        };
        let mut opts = SimOptions::default();
        if let Some(window) = doc.get("window") {
            let skip = window
                .get("skip")
                .and_then(Json::as_u64)
                .ok_or("window needs integer \"skip\"")?;
            let simulate = window
                .get("simulate")
                .and_then(Json::as_u64)
                .filter(|&n| n > 0)
                .ok_or("window needs positive integer \"simulate\"")?;
            opts.window = TraceWindow::new(skip, simulate);
        }
        if let Some(seed) = doc.get("seed") {
            opts.seed = seed.as_u64().ok_or("bad \"seed\"")?;
        }
        if let Some(sampling) = doc.get("sampling") {
            let s = sampling.as_str().ok_or("\"sampling\" must be a string")?;
            opts.sampling = parse_sampling(s)?;
        }
        let overrides = match doc.get("overrides") {
            None => ConfigDelta::default(),
            Some(o) => {
                let key = o.as_str().ok_or("\"overrides\" must be a string")?;
                ConfigDelta::parse(key).ok_or_else(|| format!("bad overrides key {key:?}"))?
            }
        };
        let (config, opts) = overrides.apply(&opts);
        let cells = benchmarks.len() * mechanisms.len();
        let class = match doc.get("class") {
            None => {
                if cells <= AUTO_INTERACTIVE_MAX {
                    Class::Interactive
                } else {
                    Class::Batch
                }
            }
            Some(c) => match c.as_str() {
                Some("interactive") => Class::Interactive,
                Some("batch") => Class::Batch,
                _ => return Err("\"class\" must be \"interactive\" or \"batch\"".to_owned()),
            },
        };
        Ok(CampaignSpec {
            benchmarks,
            mechanisms,
            config: Arc::new(config),
            opts,
            class,
        })
    }

    /// The expanded grid in benchmark-major order (cell `index` counts
    /// mechanisms within a benchmark first).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.benchmarks.len() * self.mechanisms.len());
        for benchmark in &self.benchmarks {
            for &mechanism in &self.mechanisms {
                cells.push(CellSpec {
                    index: cells.len(),
                    benchmark,
                    mechanism,
                    config: Arc::clone(&self.config),
                    opts: self.opts,
                });
            }
        }
        cells
    }
}

/// `"full"`, or `"interval/clusters"` / `"interval/clusters/warmup"` —
/// the same shape `run_all --sampled` takes.
fn parse_sampling(s: &str) -> Result<SamplingMode, String> {
    if s == "full" {
        return Ok(SamplingMode::Full);
    }
    let mut parts = s.split('/');
    let parse = |part: Option<&str>| part.and_then(|p| p.parse::<u64>().ok());
    let (interval, max_clusters) = parse(parts.next())
        .zip(parse(parts.next()))
        .filter(|&(i, k)| i > 0 && k > 0)
        .ok_or_else(|| format!("bad sampling spec {s:?} (want \"interval/clusters[/warmup]\")"))?;
    let warmup = match parts.next() {
        None => 0,
        Some(w) => w
            .parse::<u64>()
            .map_err(|_| format!("bad sampling warmup in {s:?}"))?,
    };
    if parts.next().is_some() {
        return Err(format!("bad sampling spec {s:?}"));
    }
    Ok(SamplingMode::SimPoints {
        interval,
        max_clusters: max_clusters as usize,
        warmup,
    })
}

/// Renders one completed cell as its canonical NDJSON line (no trailing
/// newline). Deterministic for a given result: fixed key order, fixed
/// float precision.
pub fn render_result(index: usize, result: &RunResult) -> String {
    format!(
        concat!(
            "{{\"cell\":{},\"benchmark\":\"{}\",\"mechanism\":\"{}\",",
            "\"instructions\":{},\"cycles\":{},\"ipc\":{:.6},",
            "\"l1d_loads\":{},\"l1d_stores\":{},\"l1d_misses\":{},\"l2_misses\":{}}}"
        ),
        index,
        escape(result.benchmark),
        escape(&result.mechanism.to_string()),
        result.perf.instructions,
        result.perf.cycles,
        result.perf.ipc(),
        result.l1d.loads,
        result.l1d.stores,
        result.l1d.misses,
        result.l2.misses,
    )
}

/// Renders one failed cell as its canonical NDJSON error line.
pub fn render_error(
    index: usize,
    benchmark: &str,
    mechanism: MechanismKind,
    error: &str,
) -> String {
    format!(
        "{{\"cell\":{},\"benchmark\":\"{}\",\"mechanism\":\"{}\",\"error\":\"{}\"}}",
        index,
        escape(benchmark),
        escape(&mechanism.to_string()),
        escape(error),
    )
}

/// Executes one cell through `store` and renders its line — the single
/// code path behind both the daemon's workers and the client's local
/// mode.
pub fn run_cell(store: &ArtifactStore, cell: &CellSpec) -> String {
    match run_one_with(
        store,
        &cell.config,
        cell.mechanism,
        cell.benchmark,
        &cell.opts,
    ) {
        Ok(result) => render_result(cell.index, &result),
        Err(e) => render_error(cell.index, cell.benchmark, cell.mechanism, &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_and_grid_order() {
        let spec = CampaignSpec::parse(r#"{"benchmarks":["swim","gcc"]}"#).unwrap();
        assert_eq!(spec.mechanisms.len(), 13, "defaults to the study set");
        assert_eq!(spec.class, Class::Batch, "26 cells exceed the auto cap");
        let cells = spec.cells();
        assert_eq!(cells.len(), 26);
        assert_eq!(cells[0].benchmark, "swim");
        assert_eq!(cells[13].benchmark, "gcc");
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn parses_explicit_fields() {
        let spec = CampaignSpec::parse(
            r#"{"benchmarks":["swim"],"mechanisms":["Base","GHB"],
                "overrides":"ruu=16","window":{"skip":2000,"simulate":2000},
                "seed":"0x1234","sampling":"10000/4/500","class":"batch"}"#,
        )
        .unwrap();
        assert_eq!(
            spec.mechanisms,
            vec![MechanismKind::Base, MechanismKind::Ghb]
        );
        assert_eq!(spec.opts.seed, 0x1234);
        assert_eq!(spec.opts.window, TraceWindow::new(2_000, 2_000));
        assert_eq!(
            spec.opts.sampling,
            SamplingMode::SimPoints {
                interval: 10_000,
                max_clusters: 4,
                warmup: 500
            }
        );
        assert_eq!(spec.class, Class::Batch);
        assert_eq!(spec.config.core.ruu_entries, 16);
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            r#"{}"#,
            r#"{"benchmarks":[]}"#,
            r#"{"benchmarks":["quake3"]}"#,
            r#"{"benchmarks":["swim"],"mechanisms":["XYZ"]}"#,
            r#"{"benchmarks":["swim"],"overrides":"bogus=1"}"#,
            r#"{"benchmarks":["swim"],"window":{"skip":0,"simulate":0}}"#,
            r#"{"benchmarks":["swim"],"sampling":"nope"}"#,
            r#"{"benchmarks":["swim"],"class":"urgent"}"#,
            r#"not json"#,
        ] {
            assert!(CampaignSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn renders_cells_deterministically() {
        let store = ArtifactStore::new();
        let spec = CampaignSpec::parse(
            r#"{"benchmarks":["swim"],"mechanisms":["Base"],
                "window":{"skip":1000,"simulate":1000}}"#,
        )
        .unwrap();
        let cells = spec.cells();
        let a = run_cell(&store, &cells[0]);
        let b = run_cell(&store, &cells[0]);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"cell\":0,\"benchmark\":\"swim\""), "{a}");
        let parsed = Json::parse(&a).unwrap();
        assert!(parsed.get("instructions").unwrap().as_u64().unwrap() > 0);
    }
}
