//! The HTTP/1.1 campaign daemon: a hand-rolled `TcpListener` front end
//! over a small worker pool that executes campaign cells through the
//! shared [`ArtifactStore`].
//!
//! # Request flow
//!
//! ```text
//! POST /campaign ── parse spec ── admission (bounded queue, 429 on
//!   overload) ── enqueue cells (interactive queue ahead of batch) ──
//!   workers run cells via run_one_with (store memo + in-process
//!   single-flight + cross-process leases) ── NDJSON lines streamed back
//!   as cells complete (Connection: close, body ends at EOF)
//! ```
//!
//! # Drain
//!
//! [`Server::shutdown`] (the binary calls it on SIGTERM) stops the
//! accept loop, lets in-flight connections and queued cells finish,
//! rejects new campaigns with 503 meanwhile, then releases the store's
//! leases and fsyncs the memo journal — a drained daemon leaves a
//! lease-free cache directory behind.

use crate::metrics::Metrics;
use crate::spec::{CampaignSpec, CellSpec, Class};
use crate::{json, spec};
use microlib::{ArtifactStore, FinishGuard, LeaseManager};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration (the binary fills this from flags/envs).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7700` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing cells.
    pub threads: usize,
    /// Admission bound: max campaign cells queued at once; a campaign
    /// that would push past it is rejected with 429 + `Retry-After`.
    pub queue_cap: usize,
    /// Disk cache directory (leases are layered on it automatically, so
    /// coalescing extends across processes sharing the directory).
    /// `None` = memory-only store.
    pub cache_dir: Option<PathBuf>,
    /// Byte cap for warm states kept resident between requests
    /// (`MICROLIB_SERVE_RESIDENT_MB`); `None` = unbounded.
    pub resident_cap_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7700".to_owned(),
            threads: 4,
            queue_cap: 256,
            cache_dir: None,
            resident_cap_bytes: None,
        }
    }
}

/// One queued cell plus the channel its rendered line returns on.
struct Job {
    cell: CellSpec,
    done: mpsc::Sender<String>,
}

#[derive(Default)]
struct QueueState {
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
    /// Cells queued (both queues).
    queued: usize,
    /// Cells currently executing on a worker.
    inflight: usize,
    /// Connections currently being handled.
    connections: usize,
    /// Tells idle workers to exit (set after the queues drain).
    stop: bool,
}

struct Shared {
    store: Arc<ArtifactStore>,
    metrics: Metrics,
    state: Mutex<QueueState>,
    /// Wakes workers when work arrives (or `stop` is set).
    work_cv: Condvar,
    /// Wakes the drain loop when a connection or cell retires.
    idle_cv: Condvar,
    drain: AtomicBool,
    queue_cap: usize,
}

/// A running daemon; see the module docs for the request flow.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Sweeps leases + journal when the server drops, whatever the exit
    /// path — `shutdown` also sweeps explicitly on the clean path.
    _finish: FinishGuard,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds the listener, spawns the accept loop and worker pool, and
    /// returns immediately. The daemon serves until
    /// [`shutdown`](Server::shutdown) (or drop).
    ///
    /// # Errors
    ///
    /// Any I/O error binding `config.addr`.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let mut store = ArtifactStore::new();
        if let Some(dir) = &config.cache_dir {
            store = store
                .with_disk_cache(dir.clone())
                .with_lease_manager(LeaseManager::new(dir.clone()));
        }
        let store = Arc::new(store);
        if let Some(cap) = config.resident_cap_bytes {
            store.set_warm_resident_cap(cap);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            store: Arc::clone(&store),
            metrics: Metrics::default(),
            state: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            drain: AtomicBool::new(false),
            queue_cap: config.queue_cap.max(1),
        });
        let workers = (0..config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept loop")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
            _finish: store.finish_guard(),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The artifact store answering this daemon's cells.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.shared.store
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.shared.drain.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop accepting, finish every in-flight connection
    /// and queued cell, retire the workers, then release leases and
    /// fsync the memo journal. Idempotent; called by the binary on
    /// SIGTERM and by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.drain.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            while state.connections > 0 || state.queued > 0 || state.inflight > 0 {
                state = self.shared.idle_cv.wait(state).expect("queue lock");
            }
            state.stop = true;
        }
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.store.finish();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                {
                    let mut state = shared.state.lock().expect("queue lock");
                    state.connections += 1;
                }
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_owned())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared);
                        let mut state = conn_shared.state.lock().expect("queue lock");
                        state.connections -= 1;
                        drop(state);
                        conn_shared.idle_cv.notify_all();
                    });
                if spawned.is_err() {
                    let mut state = shared.state.lock().expect("queue lock");
                    state.connections -= 1;
                    drop(state);
                    shared.idle_cv.notify_all();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.drain.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                if shared.drain.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("queue lock");
            loop {
                if let Some(job) = state
                    .interactive
                    .pop_front()
                    .or_else(|| state.batch.pop_front())
                {
                    state.queued -= 1;
                    state.inflight += 1;
                    shared
                        .metrics
                        .queue_depth
                        .store(state.queued as u64, Ordering::Relaxed);
                    shared
                        .metrics
                        .inflight_cells
                        .store(state.inflight as u64, Ordering::Relaxed);
                    break job;
                }
                if state.stop {
                    return;
                }
                state = shared.work_cv.wait(state).expect("queue lock");
            }
        };
        let started = Instant::now();
        let line = spec::run_cell(&shared.store, &job.cell);
        shared
            .metrics
            .cell_latency
            .observe_us(started.elapsed().as_micros() as u64);
        shared
            .metrics
            .cells_streamed
            .fetch_add(1, Ordering::Relaxed);
        if line.contains("\"error\":") {
            shared.metrics.cells_failed.fetch_add(1, Ordering::Relaxed);
        }
        // Retire the cell BEFORE delivering its line: a client that
        // scrapes /metrics the moment its stream completes must see the
        // gauges already settled.
        {
            let mut state = shared.state.lock().expect("queue lock");
            state.inflight -= 1;
            shared
                .metrics
                .inflight_cells
                .store(state.inflight as u64, Ordering::Relaxed);
        }
        shared.idle_cv.notify_all();
        // The receiver hangs up if the client disconnected mid-stream;
        // the cell still completed (and was journaled), so that is not
        // an error here.
        let _ = job.done.send(line);
    }
}

/// A parsed request head plus body.
struct Request {
    method: String,
    path: String,
    body: String,
}

fn read_request(stream: &mut TcpStream) -> Option<Request> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_owned();
    let path = parts.next()?.to_owned();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(value) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = value;
        }
    }
    // Specs are small; a megabyte bound keeps a hostile Content-Length
    // from ballooning the allocation.
    if content_length > 1 << 20 {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(Request {
        method,
        path,
        body: String::from_utf8(body).ok()?,
    })
}

fn respond(stream: &mut TcpStream, status: &str, extra_headers: &[(&str, String)], body: &str) {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let started = Instant::now();
    let Some(request) = read_request(&mut stream) else {
        shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
        respond(&mut stream, "400 Bad Request", &[], "malformed request\n");
        return;
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            shared
                .metrics
                .healthz_requests
                .fetch_add(1, Ordering::Relaxed);
            respond(&mut stream, "200 OK", &[], "ok\n");
            shared
                .metrics
                .probe_latency
                .observe_us(started.elapsed().as_micros() as u64);
        }
        ("GET", "/metrics") => {
            shared
                .metrics
                .metrics_requests
                .fetch_add(1, Ordering::Relaxed);
            let text = shared.metrics.render(&shared.store);
            respond(&mut stream, "200 OK", &[], &text);
            shared
                .metrics
                .probe_latency
                .observe_us(started.elapsed().as_micros() as u64);
        }
        ("POST", "/campaign") => {
            handle_campaign(&mut stream, shared, &request.body);
            shared
                .metrics
                .campaign_latency
                .observe_us(started.elapsed().as_micros() as u64);
        }
        _ => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond(&mut stream, "404 Not Found", &[], "unknown route\n");
        }
    }
}

fn handle_campaign(stream: &mut TcpStream, shared: &Arc<Shared>, body: &str) {
    let spec = match CampaignSpec::parse(body) {
        Ok(spec) => spec,
        Err(message) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond(stream, "400 Bad Request", &[], &format!("{message}\n"));
            return;
        }
    };
    if shared.drain.load(Ordering::SeqCst) {
        shared
            .metrics
            .draining_rejects
            .fetch_add(1, Ordering::Relaxed);
        respond(stream, "503 Service Unavailable", &[], "draining\n");
        return;
    }
    let cells = spec.cells();
    let (done_tx, done_rx) = mpsc::channel();
    {
        // Admission control: a campaign is all-or-nothing — either every
        // cell fits under the queue bound or the request is turned away
        // with a retry hint (no partial enqueues to wedge the stream).
        let mut state = shared.state.lock().expect("queue lock");
        if state.queued + cells.len() > shared.queue_cap {
            drop(state);
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            respond(
                stream,
                "429 Too Many Requests",
                &[("Retry-After", "1".to_owned())],
                "queue full, retry later\n",
            );
            return;
        }
        let queue = match spec.class {
            Class::Interactive => &mut state.interactive,
            Class::Batch => &mut state.batch,
        };
        for cell in cells.iter().cloned() {
            queue.push_back(Job {
                cell,
                done: done_tx.clone(),
            });
        }
        state.queued += cells.len();
        shared
            .metrics
            .queue_depth
            .store(state.queued as u64, Ordering::Relaxed);
    }
    drop(done_tx);
    shared.work_cv.notify_all();
    shared
        .metrics
        .campaign_requests
        .fetch_add(1, Ordering::Relaxed);
    // Stream results as cells complete. The body is NDJSON delimited by
    // connection close (no chunked framing needed); each line carries
    // its cell index so clients can re-order deterministically.
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        // Client went away; workers still drain the queue (results are
        // journaled for the next requester).
        for _ in done_rx.iter().take(cells.len()) {}
        return;
    }
    let mut received = 0;
    while received < cells.len() {
        let Ok(line) = done_rx.recv() else { break };
        received += 1;
        if stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_err()
        {
            // Keep draining completions so worker sends never error.
            for _ in done_rx.iter().take(cells.len() - received) {}
            return;
        }
    }
}

/// Parses the cell index out of a rendered NDJSON line (used by clients
/// to restore grid order after out-of-order streaming).
pub fn line_cell_index(line: &str) -> Option<u64> {
    json::Json::parse(line).ok()?.get("cell")?.as_u64()
}
