//! Daemon telemetry: stable monotone counters, per-endpoint latency
//! histograms, gauges for queue depth / in-flight cells / RSS, plus a
//! passthrough of the artifact store's hit/miss/coalesce counters — the
//! `DistanceCache`-style contract that makes a long-lived cache service
//! observable. Rendered by [`Metrics::render`] in a Prometheus-flavoured
//! text form (`name value`, histograms with `le` labels).

use microlib::ArtifactStore;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets (`le="1"` µs … `le="2^30"` µs,
/// plus the implicit `+Inf` via `_count`).
const BUCKETS: usize = 31;

/// A fixed log₂-bucket latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let bucket = (u64::BITS - us.leading_zeros()).min(BUCKETS as u32 - 1) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, out: &mut String, name: &str, endpoint: &str) {
        let mut cumulative = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let le = 1u64 << i;
            let _ = writeln!(
                out,
                "{name}_bucket{{endpoint=\"{endpoint}\",le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "{name}_count{{endpoint=\"{endpoint}\"}} {}",
            self.count()
        );
        let _ = writeln!(
            out,
            "{name}_sum_us{{endpoint=\"{endpoint}\"}} {}",
            self.sum_us.load(Ordering::Relaxed)
        );
    }
}

/// All serve-side counters and gauges. Counters are monotone for the
/// life of the process; gauges move both ways.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `POST /campaign` requests accepted (any outcome past admission).
    pub campaign_requests: AtomicU64,
    /// `GET /metrics` requests.
    pub metrics_requests: AtomicU64,
    /// `GET /healthz` requests.
    pub healthz_requests: AtomicU64,
    /// Requests rejected by admission control (HTTP 429).
    pub rejected: AtomicU64,
    /// Malformed requests (HTTP 400) and unknown routes (404).
    pub bad_requests: AtomicU64,
    /// Campaigns refused because the daemon was draining (HTTP 503).
    pub draining_rejects: AtomicU64,
    /// Result lines streamed (completed cells, errors included).
    pub cells_streamed: AtomicU64,
    /// Cells whose simulation returned an error line.
    pub cells_failed: AtomicU64,
    /// Cells currently queued (gauge).
    pub queue_depth: AtomicU64,
    /// Cells currently executing on a worker (gauge).
    pub inflight_cells: AtomicU64,
    /// Wall latency of whole `/campaign` requests.
    pub campaign_latency: Histogram,
    /// Wall latency of individual cell executions.
    pub cell_latency: Histogram,
    /// Wall latency of `/metrics` + `/healthz` requests.
    pub probe_latency: Histogram,
}

impl Metrics {
    /// Renders every counter, gauge and histogram, the store's counters
    /// (`store_*`), and the process RSS, as `name value` text.
    pub fn render(&self, store: &ArtifactStore) -> String {
        let mut out = String::with_capacity(4096);
        let counters: [(&str, u64); 10] = [
            (
                "serve_campaign_requests_total",
                self.campaign_requests.load(Ordering::Relaxed),
            ),
            (
                "serve_metrics_requests_total",
                self.metrics_requests.load(Ordering::Relaxed),
            ),
            (
                "serve_healthz_requests_total",
                self.healthz_requests.load(Ordering::Relaxed),
            ),
            (
                "serve_rejected_total",
                self.rejected.load(Ordering::Relaxed),
            ),
            (
                "serve_bad_requests_total",
                self.bad_requests.load(Ordering::Relaxed),
            ),
            (
                "serve_draining_rejects_total",
                self.draining_rejects.load(Ordering::Relaxed),
            ),
            (
                "serve_cells_streamed_total",
                self.cells_streamed.load(Ordering::Relaxed),
            ),
            (
                "serve_cells_failed_total",
                self.cells_failed.load(Ordering::Relaxed),
            ),
            (
                "serve_queue_depth",
                self.queue_depth.load(Ordering::Relaxed),
            ),
            (
                "serve_inflight_cells",
                self.inflight_cells.load(Ordering::Relaxed),
            ),
        ];
        for (name, value) in counters {
            let _ = writeln!(out, "{name} {value}");
        }
        self.campaign_latency
            .render(&mut out, "serve_latency_us", "campaign");
        self.cell_latency
            .render(&mut out, "serve_latency_us", "cell");
        self.probe_latency
            .render(&mut out, "serve_latency_us", "probe");
        let stats = store.stats();
        let store_counters: [(&str, u64); 10] = [
            ("store_memo_hits", stats.memo_hits),
            ("store_memo_misses", stats.memo_misses),
            ("store_memo_disk_hits", stats.memo_disk_hits),
            ("store_memo_coalesced", stats.memo_coalesced),
            ("store_warm_hits", stats.warm_hits),
            ("store_warm_misses", stats.warm_misses),
            ("store_warm_evictions", stats.warm_evictions),
            ("store_lease_claims", stats.lease_claims),
            ("store_lease_waits", stats.lease_waits),
            ("store_warm_resident_bytes", store.warm_resident_bytes()),
        ];
        for (name, value) in store_counters {
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(out, "process_rss_bytes {}", rss_bytes());
        out
    }
}

/// Resident set size from `/proc/self/status` (`VmRSS`), in bytes; 0 on
/// platforms without procfs.
pub fn rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Parses one `name value` line out of rendered metrics text — the
/// scrape-side helper tests and CI use to assert counter values.
pub fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe_us(0);
        h.observe_us(1);
        h.observe_us(1_000);
        h.observe_us(u64::MAX);
        assert_eq!(h.count(), 4);
        let mut out = String::new();
        h.render(&mut out, "t_us", "x");
        let last = out.lines().rfind(|l| l.starts_with("t_us_bucket")).unwrap();
        assert!(last.ends_with(" 4"), "top bucket holds everything: {last}");
    }

    #[test]
    fn render_and_scrape_round_trip() {
        let metrics = Metrics::default();
        metrics.campaign_requests.fetch_add(3, Ordering::Relaxed);
        let store = ArtifactStore::new();
        let text = metrics.render(&store);
        assert_eq!(
            metric_value(&text, "serve_campaign_requests_total"),
            Some(3)
        );
        assert_eq!(metric_value(&text, "store_memo_hits"), Some(0));
        assert!(metric_value(&text, "process_rss_bytes").unwrap() > 0);
    }
}
