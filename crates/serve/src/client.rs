//! A minimal std-only HTTP client for the daemon — used by the
//! `serve_client` CLI, the integration tests and CI to submit campaign
//! specs and scrape metrics.

use crate::server::line_cell_index;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Client handle for one daemon address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
}

/// A fully read HTTP response (`Connection: close` framing).
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Numeric status code.
    pub status: u16,
    /// Raw header lines (name-case preserved).
    pub headers: Vec<String>,
    /// Entire body.
    pub body: String,
}

impl HttpResponse {
    /// A header's trimmed value, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find_map(|line| {
            let (key, value) = line.split_once(':')?;
            key.eq_ignore_ascii_case(name).then(|| value.trim())
        })
    }
}

/// Outcome of a campaign submission.
#[derive(Clone, Debug)]
pub enum CampaignOutcome {
    /// The daemon streamed every cell; lines re-ordered by cell index
    /// (byte-identical to a local run of the same spec).
    Completed(Vec<String>),
    /// The daemon turned the request away (429/400/503 — the status and
    /// body say which).
    Rejected(HttpResponse),
}

impl Client {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        let (head, payload) = raw
            .split_once("\r\n\r\n")
            .ok_or_else(|| std::io::Error::other("truncated HTTP response"))?;
        let mut lines = head.lines();
        let status = lines
            .next()
            .and_then(|status_line| status_line.split_whitespace().nth(1))
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| std::io::Error::other("bad HTTP status line"))?;
        Ok(HttpResponse {
            status,
            headers: lines.map(str::to_owned).collect(),
            body: payload.to_owned(),
        })
    }

    /// `GET /healthz` — `Ok(true)` when the daemon answers 200.
    pub fn healthz(&self) -> std::io::Result<bool> {
        Ok(self.request("GET", "/healthz", None)?.status == 200)
    }

    /// Polls `/healthz` until the daemon answers (or `timeout` passes).
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.healthz().unwrap_or(false) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        false
    }

    /// `GET /metrics` — the rendered counter text.
    ///
    /// # Errors
    ///
    /// I/O failure, or a non-200 status.
    pub fn metrics(&self) -> std::io::Result<String> {
        let response = self.request("GET", "/metrics", None)?;
        if response.status != 200 {
            return Err(std::io::Error::other(format!(
                "/metrics returned {}",
                response.status
            )));
        }
        Ok(response.body)
    }

    /// Submits a campaign spec (raw JSON) and collects the streamed
    /// result lines, restored to grid order.
    ///
    /// # Errors
    ///
    /// Transport-level I/O failure only; HTTP-level rejection is an
    /// [`CampaignOutcome::Rejected`], not an `Err`.
    pub fn campaign(&self, spec_json: &str) -> std::io::Result<CampaignOutcome> {
        let response = self.request("POST", "/campaign", Some(spec_json))?;
        if response.status != 200 {
            return Ok(CampaignOutcome::Rejected(response));
        }
        let mut lines: Vec<String> = response
            .body
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_owned)
            .collect();
        lines.sort_by_key(|line| line_cell_index(line).unwrap_or(u64::MAX));
        Ok(CampaignOutcome::Completed(lines))
    }
}
