//! The mining driver: walk a budgeted slice of config space, probe every
//! cell through both tiers, minimize the hits, and memoize per-cell
//! outcomes through the shared [`DiskCache`] so re-runs are incremental.

use crate::cliff::CliffRecord;
use crate::minimize::minimize;
use crate::probe::{perturb_from_env, probe, DEFAULT_MECHANISMS};
use crate::space::{sample_cell, ConfigDelta};
use microlib::{ArtifactStore, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::{Decoder, Encoder};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The disk-cache class mined cell outcomes live under.
pub const MINE_CACHE_CLASS: &str = "mine";

/// Parameters of one mining run.
#[derive(Clone, Debug)]
pub struct MineConfig {
    /// Number of cells to sample.
    pub budget: usize,
    /// Relative speedup-divergence bound for
    /// [`CliffKind::Disagreement`](crate::probe::CliffKind::Disagreement).
    pub bound: f64,
    /// Base simulation options (seed, window) every cell starts from.
    pub base_opts: SimOptions,
    /// Mechanism set, Base first.
    pub mechanisms: Vec<MechanismKind>,
    /// Worker threads (0 = one per available core, capped at 8).
    pub threads: usize,
    /// Optional `(index, count)` shard hint: own-shard cells are probed
    /// first so parallel workers spend their leases on disjoint cells,
    /// but every worker still computes the full budget (outputs stay
    /// byte-identical across workers).
    pub shard: Option<(u32, u32)>,
}

impl MineConfig {
    /// The standard mining run: 64 cells at bound 0.25 with the default
    /// mechanism set.
    pub fn standard(base_opts: SimOptions) -> Self {
        MineConfig {
            budget: 64,
            bound: 0.25,
            base_opts,
            mechanisms: DEFAULT_MECHANISMS.to_vec(),
            threads: 0,
            shard: None,
        }
    }
}

/// What mining one cell concluded.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome {
    /// The tiers agree here.
    Consistent,
    /// Confirmed and minimized inconsistency.
    Cliff(Box<CliffRecord>),
    /// The cell could not be probed (e.g. a detailed-run timeout on a
    /// degenerate configuration); recorded so the failure is visible and
    /// memoized like any other outcome.
    Failed(String),
}

/// One mined cell.
#[derive(Clone, Debug)]
pub struct MinedCell {
    /// Cell index within the run's budget.
    pub index: usize,
    /// Sampled benchmark.
    pub benchmark: &'static str,
    /// Sampled config delta.
    pub delta: ConfigDelta,
    /// The conclusion.
    pub outcome: CellOutcome,
    /// Whether the outcome came from the disk cache.
    pub cached: bool,
}

/// A full mining run's results, in cell order.
#[derive(Debug)]
pub struct MineReport {
    /// Every cell, indexed by its sample number.
    pub cells: Vec<MinedCell>,
    /// Cells whose outcome was computed this run.
    pub computed: usize,
    /// Cells served from the disk cache.
    pub cached: usize,
}

impl MineReport {
    /// The confirmed cliff records, in cell order.
    pub fn cliffs(&self) -> Vec<&CliffRecord> {
        self.cells
            .iter()
            .filter_map(|c| match &c.outcome {
                CellOutcome::Cliff(r) => Some(r.as_ref()),
                _ => None,
            })
            .collect()
    }
}

/// The memo key for one cell: every input that can change its outcome,
/// including float bounds bit-exactly and any injected perturbation.
fn memo_key(cfg: &MineConfig, benchmark: &str, delta: &ConfigDelta, perturb: f64) -> String {
    let mechs = cfg
        .mechanisms
        .iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "mine|{benchmark}|{}|seed={:#x}|skip={}|sim={}|bound={:016x}|mechs={mechs}|perturb={:016x}",
        delta.key(),
        cfg.base_opts.seed,
        cfg.base_opts.window.skip,
        cfg.base_opts.window.simulate,
        cfg.bound.to_bits(),
        perturb.to_bits(),
    )
}

fn encode_outcome(outcome: &CellOutcome) -> Vec<u8> {
    let mut enc = Encoder::new();
    match outcome {
        CellOutcome::Consistent => enc.put_u8(0),
        CellOutcome::Cliff(record) => {
            enc.put_u8(1);
            enc.put_str(&record.render());
        }
        CellOutcome::Failed(err) => {
            enc.put_u8(2);
            enc.put_str(err);
        }
    }
    enc.into_bytes()
}

fn decode_outcome(bytes: &[u8]) -> Option<CellOutcome> {
    let mut dec = Decoder::new(bytes);
    match dec.take_u8().ok()? {
        0 => Some(CellOutcome::Consistent),
        1 => CliffRecord::parse(dec.take_str().ok()?).map(|r| CellOutcome::Cliff(Box::new(r))),
        2 => Some(CellOutcome::Failed(dec.take_str().ok()?.to_owned())),
        _ => None,
    }
}

/// Probes + minimizes one cell (no caching). Cliffness is judged
/// relative to the benchmark's baseline cell, which is probed first (its
/// detailed runs are memoized, so the cost is shared across the run).
fn compute_cell(
    store: &ArtifactStore,
    cfg: &MineConfig,
    benchmark: &'static str,
    delta: &ConfigDelta,
) -> CellOutcome {
    let baseline = match probe(
        store,
        &ConfigDelta::default(),
        benchmark,
        &cfg.mechanisms,
        &cfg.base_opts,
    ) {
        Ok(outcome) => outcome,
        Err(e) => return CellOutcome::Failed(format!("baseline probe: {e}")),
    };
    let first = match probe(store, delta, benchmark, &cfg.mechanisms, &cfg.base_opts) {
        Ok(outcome) => outcome,
        Err(e) => return CellOutcome::Failed(e.to_string()),
    };
    if first.cliff_kind(&baseline, cfg.bound).is_none() {
        return CellOutcome::Consistent;
    }
    // A probe error during minimization counts as consistent: the
    // reversion is rejected and the knob stays in the delta.
    let minimal = minimize(delta, |candidate| {
        probe(store, candidate, benchmark, &cfg.mechanisms, &cfg.base_opts)
            .map(|o| o.cliff_kind(&baseline, cfg.bound).is_some())
            .unwrap_or(false)
    });
    let last = match probe(store, &minimal, benchmark, &cfg.mechanisms, &cfg.base_opts) {
        Ok(outcome) => outcome,
        Err(e) => return CellOutcome::Failed(e.to_string()),
    };
    let kind = last
        .cliff_kind(&baseline, cfg.bound)
        .expect("minimizer preserves the inconsistency");
    // Record the run's *base* window: a win knob in the delta scales the
    // measured slice on re-probe exactly as it did when mined, so the
    // repro line exports the base values, not the scaled ones.
    CellOutcome::Cliff(Box::new(CliffRecord::from_probe(
        benchmark,
        kind,
        &delta.key(),
        &minimal.key(),
        cfg.base_opts.seed,
        cfg.base_opts.window.skip,
        cfg.base_opts.window.simulate,
        cfg.bound,
        perturb_from_env(),
        baseline.max_rel_err,
        last.divergence_shift(&baseline),
        &last,
    )))
}

/// Mines one cell, going through the disk cache when available.
fn mine_cell(store: &ArtifactStore, cfg: &MineConfig, index: usize) -> MinedCell {
    let (benchmark, delta) = sample_cell(cfg.base_opts.seed, index as u64, &cfg.base_opts);
    let perturb = perturb_from_env();
    let key = memo_key(cfg, benchmark, &delta, perturb);
    if let Some(cache) = store.disk_cache() {
        if let Some(outcome) = cache
            .load(MINE_CACHE_CLASS, &key)
            .and_then(|bytes| decode_outcome(&bytes))
        {
            return MinedCell {
                index,
                benchmark,
                delta,
                outcome,
                cached: true,
            };
        }
    }
    let outcome = compute_cell(store, cfg, benchmark, &delta);
    if let Some(cache) = store.disk_cache() {
        cache.store(MINE_CACHE_CLASS, &key, &encode_outcome(&outcome));
    }
    MinedCell {
        index,
        benchmark,
        delta,
        outcome,
        cached: false,
    }
}

/// Runs a full mining campaign: samples `cfg.budget` cells, probes and
/// minimizes each, and returns the outcomes in cell order.
///
/// Cells are independent, so they fan out over `cfg.threads` workers;
/// result order (and therefore every derived artifact) depends only on
/// the cell index, never on scheduling. With a shard hint the worker
/// probes its own cells first — combined with the lease-coordinated
/// detailed runs underneath, parallel workers split the cold-start cost
/// without diverging on output.
pub fn mine(store: &ArtifactStore, cfg: &MineConfig) -> MineReport {
    let mut order: Vec<usize> = (0..cfg.budget).collect();
    if let Some((index, count)) = cfg.shard {
        if count > 1 {
            order.sort_by_key(|i| ((*i as u32) % count != index, *i));
        }
    }

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        cfg.threads
    }
    .max(1)
    .min(cfg.budget.max(1));

    let slots: Vec<Mutex<Option<MinedCell>>> = (0..cfg.budget).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let pos = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&index) = order.get(pos) else { break };
                let cell = mine_cell(store, cfg, index);
                *slots[index].lock().expect("slot lock") = Some(cell);
            });
        }
    });

    let cells: Vec<MinedCell> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock").expect("cell mined"))
        .collect();
    let cached = cells.iter().filter(|c| c.cached).count();
    MineReport {
        computed: cells.len() - cached,
        cached,
        cells,
    }
}

/// Re-probes one cell from a `benchmark:delta` repro spec (the
/// `--mine-cell` flag) and returns the rendered evidence, or an error
/// string.
pub fn reprobe_cell(store: &ArtifactStore, spec: &str, cfg: &MineConfig) -> Result<String, String> {
    let (benchmark, delta_key) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad --mine-cell spec {spec:?}: expected benchmark:delta"))?;
    let delta =
        ConfigDelta::parse(delta_key).ok_or_else(|| format!("bad delta key {delta_key:?}"))?;
    let baseline = probe(
        store,
        &ConfigDelta::default(),
        benchmark,
        &cfg.mechanisms,
        &cfg.base_opts,
    )
    .map_err(|e| e.to_string())?;
    let outcome = probe(store, &delta, benchmark, &cfg.mechanisms, &cfg.base_opts)
        .map_err(|e| e.to_string())?;
    let mut s = String::new();
    s.push_str(&format!("cell {benchmark}:{}\n", delta.key()));
    for p in &outcome.pairs {
        s.push_str(&format!(
            "  {:6} detailed cpi {:.4} speedup {:.4} | analytic cpi {:.4} speedup {:.4}\n",
            p.mechanism.to_string(),
            p.detailed_cpi,
            p.detailed_speedup,
            p.analytic_cpi,
            p.analytic_speedup
        ));
    }
    s.push_str(&format!(
        "  max-rel-err {:.4} (baseline {:.4}) verdict {}\n",
        outcome.max_rel_err,
        baseline.max_rel_err,
        match outcome.cliff_kind(&baseline, cfg.bound) {
            Some(kind) => kind.label(),
            None => "consistent",
        }
    ));
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_trace::TraceWindow;

    fn tiny_cfg() -> MineConfig {
        let base_opts = SimOptions {
            window: TraceWindow::new(1_000, 2_000),
            ..SimOptions::default()
        };
        MineConfig {
            budget: 4,
            threads: 2,
            ..MineConfig::standard(base_opts)
        }
    }

    #[test]
    fn outcomes_round_trip_through_the_codec() {
        let consistent = CellOutcome::Consistent;
        let failed = CellOutcome::Failed("timeout".into());
        for o in [&consistent, &failed] {
            assert_eq!(decode_outcome(&encode_outcome(o)).as_ref(), Some(o));
        }
    }

    #[test]
    fn memo_keys_separate_perturbed_runs() {
        let cfg = tiny_cfg();
        let delta = ConfigDelta::default();
        let a = memo_key(&cfg, "swim", &delta, 0.0);
        let b = memo_key(&cfg, "swim", &delta, 0.07);
        assert_ne!(a, b);
    }

    #[test]
    fn mining_is_deterministic_across_thread_counts() {
        let store = ArtifactStore::new();
        let mut cfg = tiny_cfg();
        cfg.threads = 1;
        let one = mine(&store, &cfg);
        cfg.threads = 4;
        let four = mine(&store, &cfg);
        let render = |r: &MineReport| {
            r.cells
                .iter()
                .map(|c| format!("{} {} {:?}", c.benchmark, c.delta.key(), c.outcome))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&one), render(&four));
    }

    #[test]
    fn shard_hint_reorders_processing_not_results() {
        let store = ArtifactStore::new();
        let mut cfg = tiny_cfg();
        let plain = mine(&store, &cfg);
        cfg.shard = Some((1, 2));
        let sharded = mine(&store, &cfg);
        assert_eq!(plain.cells.len(), sharded.cells.len());
        for (a, b) in plain.cells.iter().zip(&sharded.cells) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn reprobe_reports_a_verdict() {
        let store = ArtifactStore::new();
        let cfg = tiny_cfg();
        let text = reprobe_cell(&store, "swim:baseline", &cfg).unwrap();
        assert!(text.contains("verdict"));
        assert!(reprobe_cell(&store, "nonsense", &cfg).is_err());
    }
}
