//! # microlib-miner
//!
//! A differential inconsistency miner over MicroLib's two model tiers:
//! the detailed out-of-order simulator and the cheap analytic CPI stack
//! ([`microlib_cost::CpiModel`] fed by functional-warm counters via
//! [`microlib::run_analytic`]).
//!
//! The miner walks a deterministic sample of configuration space
//! ([`KNOBS`]): for each cell it measures every mechanism of a fixed set
//! in both tiers, normalizes to Base, and flags the cell when the tiers'
//! speedups diverge beyond a bound or decisively *rank* mechanisms
//! opposite ways. Hits are minimized AnICA-style ([`minimize`]) — greedy
//! per-knob reversion toward the baseline until the inconsistency
//! disappears — and emitted as content-keyed, byte-reproducible
//! [`CliffRecord`]s. Per-cell outcomes are memoized through the shared
//! disk cache, so mining is incremental and resumable, and the committed
//! `cliffs-golden/` corpus turns confirmed cliffs into permanent
//! regression cells.
//!
//! # Examples
//!
//! ```
//! use microlib::{ArtifactStore, SimOptions};
//! use microlib_miner::{mine, MineConfig};
//! use microlib_trace::TraceWindow;
//!
//! let store = ArtifactStore::new();
//! let base_opts = SimOptions {
//!     window: TraceWindow::new(1_000, 2_000),
//!     ..SimOptions::default()
//! };
//! let cfg = MineConfig {
//!     budget: 2,
//!     ..MineConfig::standard(base_opts)
//! };
//! let report = mine(&store, &cfg);
//! assert_eq!(report.cells.len(), 2);
//! ```

mod cliff;
mod mine;
mod minimize;
mod probe;
mod space;

pub use cliff::CliffRecord;
pub use mine::{
    mine, reprobe_cell, CellOutcome, MineConfig, MineReport, MinedCell, MINE_CACHE_CLASS,
};
pub use minimize::minimize;
pub use probe::{
    perturb_from_env, probe, CliffKind, ProbeOutcome, TierPair, DEFAULT_MECHANISMS, RANK_MARGIN,
};
pub use space::{sample_cell, ConfigDelta, Knob, KNOBS, MINE_BENCHMARKS};
