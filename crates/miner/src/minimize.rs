//! AnICA-style greedy delta minimization: revert knobs toward the
//! baseline one at a time, keeping a reversion whenever the inconsistency
//! survives without that knob, until no single reversion preserves it.

use crate::space::ConfigDelta;

/// Minimizes `delta` against `still_inconsistent`: repeatedly tries to
/// drop each entry (ascending knob order) and keeps the drop when the
/// oracle still reports the inconsistency, looping until a fixed point.
///
/// Guarantees (property-tested in `tests/miner_properties.rs`):
/// the result is a subset of `delta`; if the oracle held on `delta` it
/// holds on the result; and re-minimizing the result returns it
/// unchanged. The oracle must be deterministic — in mining it is "does
/// [`probe`](crate::probe) still report a cliff here", where a probe
/// error counts as *consistent* (the reversion is rejected), so
/// minimization never walks into cells it cannot evaluate.
pub fn minimize(
    delta: &ConfigDelta,
    mut still_inconsistent: impl FnMut(&ConfigDelta) -> bool,
) -> ConfigDelta {
    let mut current = delta.clone();
    loop {
        let mut changed = false;
        let mut position = 0;
        while position < current.len() {
            let candidate = current.without_entry(position);
            if still_inconsistent(&candidate) {
                current = candidate;
                changed = true;
                // Same position now holds the next entry.
            } else {
                position += 1;
            }
        }
        if !changed {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_load_bearing_knob() {
        let delta = ConfigDelta::new(vec![(0, 1), (2, 1), (6, 2)]);
        let culprit = ConfigDelta::new(vec![(2, 1)]);
        // Inconsistent iff knob 2 is off baseline.
        let minimal = minimize(&delta, |d| culprit.is_subset_of(d));
        assert_eq!(minimal, culprit);
    }

    #[test]
    fn conjunction_of_two_knobs_survives() {
        let delta = ConfigDelta::new(vec![(0, 1), (2, 1), (6, 2), (7, 3)]);
        let needed = ConfigDelta::new(vec![(2, 1), (7, 3)]);
        let minimal = minimize(&delta, |d| needed.is_subset_of(d));
        assert_eq!(minimal, needed);
    }

    #[test]
    fn always_inconsistent_minimizes_to_baseline() {
        let delta = ConfigDelta::new(vec![(1, 1), (4, 2)]);
        assert!(minimize(&delta, |_| true).is_empty());
    }

    #[test]
    fn oracle_failing_everywhere_keeps_the_full_delta() {
        // Degenerate: the cell itself is the only inconsistent point.
        let delta = ConfigDelta::new(vec![(1, 1), (4, 2)]);
        let minimal = minimize(&delta, |d| *d == delta);
        assert_eq!(minimal, delta);
    }
}
