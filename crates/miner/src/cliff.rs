//! Cliff records: the reproducible, content-keyed text artifacts the
//! miner emits and the `cliffs-golden/` gate byte-compares.

use crate::probe::{CliffKind, ProbeOutcome};
use microlib_mech::MechanismKind;
use microlib_model::codec::fnv1a;

/// One confirmed inconsistency cell, fully reproducible from its fields.
///
/// [`render`](CliffRecord::render) produces the canonical text form
/// (fixed field order, 4-decimal floats, content id derived from the
/// body) and [`parse`](CliffRecord::parse) round-trips it; the golden
/// gate re-probes the *minimal* delta and re-renders, so any change in
/// either tier's numbers shows up as a byte diff.
#[derive(Clone, Debug, PartialEq)]
pub struct CliffRecord {
    /// Benchmark the cell runs.
    pub benchmark: String,
    /// Why the cell is inconsistent.
    pub kind: CliffKind,
    /// The sampled delta the miner hit (key form).
    pub original: String,
    /// The minimized delta (key form).
    pub minimal: String,
    /// Trace seed.
    pub seed: u64,
    /// Warm-up instructions of the mining run's base window.
    pub skip: u64,
    /// Measured instructions of the base window (a `win` knob in the
    /// delta scales this on probe, when mined and when reproduced).
    pub simulate: u64,
    /// Disagreement bound the mining run used.
    pub bound: f64,
    /// Injected analytic perturbation active when mined (normally 0).
    pub perturb: f64,
    /// Probed mechanisms, Base first.
    pub mechanisms: Vec<MechanismKind>,
    /// Detailed-tier CPI per mechanism (probe order).
    pub detailed_cpi: Vec<f64>,
    /// Analytic-tier CPI per mechanism (probe order).
    pub analytic_cpi: Vec<f64>,
    /// Non-Base mechanisms by detailed speedup, best first.
    pub detailed_rank: Vec<MechanismKind>,
    /// Non-Base mechanisms by analytic speedup, best first.
    pub analytic_rank: Vec<MechanismKind>,
    /// Largest relative speedup divergence at this cell.
    pub max_rel_err: f64,
    /// The benchmark's divergence at the baseline cell.
    pub baseline_rel_err: f64,
    /// Largest per-mechanism shift in signed relative error between the
    /// baseline cell and this one — the disagreement criterion the miner
    /// compared against the bound.
    pub divergence_shift: f64,
}

fn join_mechs(mechs: &[MechanismKind], sep: &str) -> String {
    mechs
        .iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(sep)
}

fn parse_mechs(s: &str, sep: char) -> Option<Vec<MechanismKind>> {
    if s.trim().is_empty() {
        return Some(Vec::new());
    }
    s.split(sep)
        .map(|p| MechanismKind::by_acronym(p.trim()))
        .collect()
}

fn join_f64(v: &[f64]) -> String {
    v.iter()
        .map(|x| format!("{x:.4}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_f64s(s: &str) -> Option<Vec<f64>> {
    if s.trim().is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(|p| p.trim().parse().ok()).collect()
}

impl CliffRecord {
    /// Builds a record from the final probe of the minimized delta.
    #[allow(clippy::too_many_arguments)]
    pub fn from_probe(
        benchmark: &str,
        kind: CliffKind,
        original: &str,
        minimal: &str,
        seed: u64,
        skip: u64,
        simulate: u64,
        bound: f64,
        perturb: f64,
        baseline_rel_err: f64,
        divergence_shift: f64,
        outcome: &ProbeOutcome,
    ) -> Self {
        CliffRecord {
            benchmark: benchmark.to_owned(),
            kind,
            original: original.to_owned(),
            minimal: minimal.to_owned(),
            seed,
            skip,
            simulate,
            bound,
            perturb,
            mechanisms: outcome.pairs.iter().map(|p| p.mechanism).collect(),
            detailed_cpi: outcome.pairs.iter().map(|p| p.detailed_cpi).collect(),
            analytic_cpi: outcome.pairs.iter().map(|p| p.analytic_cpi).collect(),
            detailed_rank: outcome.detailed_rank.clone(),
            analytic_rank: outcome.analytic_rank.clone(),
            max_rel_err: outcome.max_rel_err,
            baseline_rel_err,
            divergence_shift,
        }
    }

    /// The record body (everything below the id line).
    fn body(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("benchmark: {}\n", self.benchmark));
        s.push_str(&format!("kind: {}\n", self.kind.label()));
        s.push_str(&format!("original: {}\n", self.original));
        s.push_str(&format!("minimal: {}\n", self.minimal));
        s.push_str(&format!("seed: {:#x}\n", self.seed));
        s.push_str(&format!(
            "window: skip={} sim={}\n",
            self.skip, self.simulate
        ));
        s.push_str(&format!("bound: {:.4}\n", self.bound));
        s.push_str(&format!("perturb: {:.4}\n", self.perturb));
        s.push_str(&format!(
            "mechanisms: {}\n",
            join_mechs(&self.mechanisms, ",")
        ));
        s.push_str(&format!("detailed-cpi: {}\n", join_f64(&self.detailed_cpi)));
        s.push_str(&format!("analytic-cpi: {}\n", join_f64(&self.analytic_cpi)));
        s.push_str(&format!(
            "detailed-rank: {}\n",
            join_mechs(&self.detailed_rank, ">")
        ));
        s.push_str(&format!(
            "analytic-rank: {}\n",
            join_mechs(&self.analytic_rank, ">")
        ));
        s.push_str(&format!("max-rel-err: {:.4}\n", self.max_rel_err));
        s.push_str(&format!("baseline-rel-err: {:.4}\n", self.baseline_rel_err));
        s.push_str(&format!("divergence-shift: {:.4}\n", self.divergence_shift));
        s.push_str(&format!(
            "repro: MICROLIB_SKIP={} MICROLIB_SIM={} MICROLIB_SEED={:#x} run_all \
             --mine-cell {}:{} --mine-bound {:.4}\n",
            self.skip, self.simulate, self.seed, self.benchmark, self.minimal, self.bound
        ));
        s
    }

    /// Content id: FNV-1a over the body, so identical inconsistencies
    /// found by different runs share a key.
    pub fn id(&self) -> u64 {
        fnv1a(self.body().as_bytes())
    }

    /// Canonical text form: `cliff <id>` followed by the body.
    pub fn render(&self) -> String {
        format!("cliff {:016x}\n{}", self.id(), self.body())
    }

    /// Parses a [`render`](CliffRecord::render)ed record. Returns `None`
    /// on malformed input or an id that does not match the body (a
    /// hand-edited record must not pass the gate silently).
    pub fn parse(text: &str) -> Option<CliffRecord> {
        let mut fields = std::collections::HashMap::new();
        let mut id: Option<u64> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("cliff ") {
                id = u64::from_str_radix(rest.trim(), 16).ok();
            } else if let Some((k, v)) = line.split_once(':') {
                fields.insert(k.trim().to_owned(), v.trim().to_owned());
            }
        }
        let get = |k: &str| fields.get(k).cloned();
        let window = get("window")?;
        let (skip_part, sim_part) = window.split_once(' ')?;
        let record = CliffRecord {
            benchmark: get("benchmark")?,
            kind: CliffKind::parse(&get("kind")?)?,
            original: get("original")?,
            minimal: get("minimal")?,
            seed: {
                let s = get("seed")?;
                u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()?
            },
            skip: skip_part.strip_prefix("skip=")?.parse().ok()?,
            simulate: sim_part.strip_prefix("sim=")?.parse().ok()?,
            bound: get("bound")?.parse().ok()?,
            perturb: get("perturb")?.parse().ok()?,
            mechanisms: parse_mechs(&get("mechanisms")?, ',')?,
            detailed_cpi: parse_f64s(&get("detailed-cpi")?)?,
            analytic_cpi: parse_f64s(&get("analytic-cpi")?)?,
            detailed_rank: parse_mechs(&get("detailed-rank")?, '>')?,
            analytic_rank: parse_mechs(&get("analytic-rank")?, '>')?,
            max_rel_err: get("max-rel-err")?.parse().ok()?,
            baseline_rel_err: get("baseline-rel-err")?.parse().ok()?,
            divergence_shift: get("divergence-shift")?.parse().ok()?,
        };
        if id? != record.id() {
            return None;
        }
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CliffRecord {
        CliffRecord {
            benchmark: "mcf".into(),
            kind: CliffKind::Disagreement,
            original: "l1d_mshr=1,ruu=16,mem=const200".into(),
            minimal: "l1d_mshr=1".into(),
            seed: 0xC0FFEE,
            skip: 2_000,
            simulate: 4_000,
            bound: 0.25,
            perturb: 0.0,
            mechanisms: vec![MechanismKind::Base, MechanismKind::Sp, MechanismKind::Ghb],
            detailed_cpi: vec![1.5234, 1.2, 1.25],
            analytic_cpi: vec![1.1, 1.05, 1.07],
            detailed_rank: vec![MechanismKind::Sp, MechanismKind::Ghb],
            analytic_rank: vec![MechanismKind::Ghb, MechanismKind::Sp],
            max_rel_err: 0.3125,
            baseline_rel_err: 0.0312,
            divergence_shift: 0.2813,
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let r = sample();
        let text = r.render();
        let parsed = CliffRecord::parse(&text).unwrap();
        assert_eq!(parsed.render(), text);
        assert_eq!(parsed.kind, r.kind);
        assert_eq!(parsed.minimal, r.minimal);
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(sample().render(), sample().render());
    }

    #[test]
    fn tampered_body_fails_the_id_check() {
        let text = sample().render().replace("1.2000", "1.2001");
        assert_eq!(CliffRecord::parse(&text), None);
    }

    #[test]
    fn different_content_gets_different_ids() {
        let a = sample();
        let mut b = sample();
        b.minimal = "ruu=16".into();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn repro_line_is_single_line_and_complete() {
        let text = sample().render();
        let repro = text
            .lines()
            .find(|l| l.starts_with("repro: "))
            .expect("repro line");
        assert!(repro.contains("MICROLIB_SEED=0xc0ffee"));
        assert!(repro.contains("--mine-cell mcf:l1d_mshr=1"));
    }
}
