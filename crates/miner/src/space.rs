//! The miner's search space: a small table of configuration knobs, each a
//! named list of values with the baseline at index 0, plus the
//! [`ConfigDelta`] type (a sparse assignment of non-baseline values) and
//! the deterministic cell sampler.

use microlib::SimOptions;
use microlib_model::{FidelityConfig, MemoryModel, SdramConfig, SystemConfig};
use microlib_trace::TraceWindow;

/// One knob: a name, its value labels (index 0 = baseline), and the
/// function that applies a chosen value to a configuration under build.
pub struct Knob {
    /// Stable name used in delta keys and cliff records.
    pub name: &'static str,
    /// Value labels, baseline first.
    pub labels: &'static [&'static str],
    apply: fn(&mut SystemConfig, &mut SimOptions, usize),
}

impl std::fmt::Debug for Knob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Knob")
            .field("name", &self.name)
            .field("labels", &self.labels)
            .finish()
    }
}

fn set_l1d_kb(c: &mut SystemConfig, _: &mut SimOptions, v: usize) {
    c.l1d.size_bytes = [32, 8, 16, 64][v] * 1024;
}
fn set_l1d_assoc(c: &mut SystemConfig, _: &mut SimOptions, v: usize) {
    c.l1d.assoc = [1, 2, 4][v];
}
fn set_l1d_mshr(c: &mut SystemConfig, _: &mut SimOptions, v: usize) {
    c.l1d.mshr_entries = [8, 1, 2, 4][v];
}
fn set_l1d_mshr_rd(c: &mut SystemConfig, _: &mut SimOptions, v: usize) {
    c.l1d.mshr_reads_per_entry = [4, 1][v];
}
fn set_l2_kb(c: &mut SystemConfig, _: &mut SimOptions, v: usize) {
    c.l2.size_bytes = [1024, 256, 512][v] * 1024;
}
fn set_l2_latency(c: &mut SystemConfig, _: &mut SimOptions, v: usize) {
    c.l2.latency = [12, 6, 24][v];
}
fn set_ruu(c: &mut SystemConfig, _: &mut SimOptions, v: usize) {
    let entries = [128, 16, 32, 64][v];
    c.core.ruu_entries = entries;
    c.core.lsq_entries = entries;
}
fn set_memory(c: &mut SystemConfig, _: &mut SimOptions, v: usize) {
    c.memory = match v {
        0 => MemoryModel::Sdram(SdramConfig::baseline()),
        1 => MemoryModel::simplescalar_70(),
        2 => MemoryModel::Sdram(SdramConfig::scaled_to_70_cycles()),
        _ => MemoryModel::Constant { latency: 200 },
    };
}
fn set_window(_: &mut SystemConfig, o: &mut SimOptions, v: usize) {
    let div = [1, 2, 4][v];
    o.window = TraceWindow::new(o.window.skip, (o.window.simulate / div).max(1_000));
}
fn set_fidelity(c: &mut SystemConfig, _: &mut SimOptions, v: usize) {
    c.fidelity = match v {
        0 => FidelityConfig::microlib(),
        _ => FidelityConfig::simplescalar_like(),
    };
}

/// The knob table. Every knob's baseline (index 0) reproduces
/// [`SystemConfig::baseline`] + the caller's base [`SimOptions`], so the
/// empty delta is exactly the baseline cell.
pub const KNOBS: &[Knob] = &[
    Knob {
        name: "l1d_kb",
        labels: &["32", "8", "16", "64"],
        apply: set_l1d_kb,
    },
    Knob {
        name: "l1d_assoc",
        labels: &["1", "2", "4"],
        apply: set_l1d_assoc,
    },
    Knob {
        name: "l1d_mshr",
        labels: &["8", "1", "2", "4"],
        apply: set_l1d_mshr,
    },
    Knob {
        name: "l1d_mshr_rd",
        labels: &["4", "1"],
        apply: set_l1d_mshr_rd,
    },
    Knob {
        name: "l2_kb",
        labels: &["1024", "256", "512"],
        apply: set_l2_kb,
    },
    Knob {
        name: "l2_lat",
        labels: &["12", "6", "24"],
        apply: set_l2_latency,
    },
    Knob {
        name: "ruu",
        labels: &["128", "16", "32", "64"],
        apply: set_ruu,
    },
    Knob {
        name: "mem",
        labels: &["sdram170", "const70", "sdram70", "const200"],
        apply: set_memory,
    },
    Knob {
        name: "win",
        labels: &["full", "half", "quarter"],
        apply: set_window,
    },
    Knob {
        name: "fidelity",
        labels: &["microlib", "simplescalar"],
        apply: set_fidelity,
    },
];

/// The benchmarks the sampler draws cells from: a deliberately diverse
/// slice — streaming (swim, art), pointer-chasing (mcf), branchy integer
/// (gcc, gzip) and mixed-locality FP (ammp).
pub const MINE_BENCHMARKS: [&str; 6] = ["swim", "mcf", "gcc", "art", "ammp", "gzip"];

/// A sparse, sorted assignment of non-baseline knob values — the
/// difference between a sampled cell's configuration and the baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConfigDelta {
    entries: Vec<(usize, usize)>, // (knob index, value index != 0), sorted
}

impl ConfigDelta {
    /// Builds a delta from `(knob index, value index)` pairs; baseline
    /// values (0) are dropped, duplicates keep the last assignment.
    pub fn new(mut entries: Vec<(usize, usize)>) -> Self {
        entries.retain(|&(k, v)| v != 0 && k < KNOBS.len() && v < KNOBS[k].labels.len());
        entries.sort_unstable();
        entries.dedup_by_key(|e| e.0);
        ConfigDelta { entries }
    }

    /// The `(knob index, value index)` entries, sorted by knob.
    pub fn entries(&self) -> &[(usize, usize)] {
        &self.entries
    }

    /// Whether this is the baseline (empty) delta.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of non-baseline knobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether every entry of `self` also appears in `other`.
    pub fn is_subset_of(&self, other: &ConfigDelta) -> bool {
        self.entries.iter().all(|e| other.entries.contains(e))
    }

    /// The delta with the entry at `position` (into [`entries`]) removed —
    /// the minimizer's single-knob reversion step.
    ///
    /// [`entries`]: ConfigDelta::entries
    pub fn without_entry(&self, position: usize) -> ConfigDelta {
        let mut entries = self.entries.clone();
        entries.remove(position);
        ConfigDelta { entries }
    }

    /// Canonical text form: `knob=label` pairs joined by `,`, or
    /// `baseline` for the empty delta. [`parse`](ConfigDelta::parse)
    /// round-trips it.
    pub fn key(&self) -> String {
        if self.entries.is_empty() {
            return "baseline".to_owned();
        }
        self.entries
            .iter()
            .map(|&(k, v)| format!("{}={}", KNOBS[k].name, KNOBS[k].labels[v]))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses a [`key`](ConfigDelta::key)-formatted delta.
    pub fn parse(key: &str) -> Option<ConfigDelta> {
        let key = key.trim();
        if key.is_empty() || key == "baseline" {
            return Some(ConfigDelta::default());
        }
        let mut entries = Vec::new();
        for part in key.split(',') {
            let (name, label) = part.split_once('=')?;
            let k = KNOBS.iter().position(|kn| kn.name == name.trim())?;
            let v = KNOBS[k].labels.iter().position(|l| *l == label.trim())?;
            if v != 0 {
                entries.push((k, v));
            }
        }
        Some(ConfigDelta::new(entries))
    }

    /// Applies the delta on top of [`SystemConfig::baseline`] and the
    /// caller's base options.
    pub fn apply(&self, base_opts: &SimOptions) -> (SystemConfig, SimOptions) {
        let mut config = SystemConfig::baseline();
        let mut opts = *base_opts;
        for &(k, v) in &self.entries {
            (KNOBS[k].apply)(&mut config, &mut opts, v);
        }
        (config, opts)
    }

    /// Whether the configuration this delta produces passes validation.
    pub fn is_valid(&self, base_opts: &SimOptions) -> bool {
        self.apply(base_opts).0.validate().is_ok()
    }
}

/// SplitMix64 — the deterministic generator behind the sampler.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically samples cell `index` of the run seeded by `seed`:
/// a benchmark plus a sparse config delta (each knob stays at baseline
/// with probability 5/8). Invalid configurations are resampled with a
/// bumped salt, so the function is total and reproducible.
pub fn sample_cell(seed: u64, index: u64, base_opts: &SimOptions) -> (&'static str, ConfigDelta) {
    for salt in 0..64u64 {
        let cell = mix(seed ^ mix(index.wrapping_mul(0x9E37).wrapping_add(salt)));
        let benchmark = MINE_BENCHMARKS[(cell % MINE_BENCHMARKS.len() as u64) as usize];
        let mut entries = Vec::new();
        for (k, knob) in KNOBS.iter().enumerate() {
            let draw = mix(cell ^ (k as u64).wrapping_mul(0xA5A5_A5A5));
            if draw % 8 < 5 {
                continue; // baseline
            }
            let v = 1 + ((draw >> 3) % (knob.labels.len() as u64 - 1)) as usize;
            entries.push((k, v));
        }
        let delta = ConfigDelta::new(entries);
        if delta.is_valid(base_opts) {
            return (benchmark, delta);
        }
    }
    // Unreachable in practice (the baseline delta is always valid after
    // at most a few salts), but stay total.
    (MINE_BENCHMARKS[0], ConfigDelta::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> SimOptions {
        SimOptions {
            window: TraceWindow::new(2_000, 8_000),
            ..SimOptions::default()
        }
    }

    #[test]
    fn key_round_trips() {
        let d = ConfigDelta::new(vec![(2, 1), (6, 2), (7, 3)]);
        assert_eq!(ConfigDelta::parse(&d.key()).unwrap(), d);
        assert_eq!(
            ConfigDelta::parse("baseline").unwrap(),
            ConfigDelta::default()
        );
        assert_eq!(ConfigDelta::default().key(), "baseline");
    }

    #[test]
    fn parse_rejects_unknown_knobs() {
        assert!(ConfigDelta::parse("warp_drive=9").is_none());
        assert!(ConfigDelta::parse("l1d_kb=3").is_none());
    }

    #[test]
    fn empty_delta_is_the_baseline() {
        let (config, o) = ConfigDelta::default().apply(&opts());
        assert_eq!(config, SystemConfig::baseline());
        assert_eq!(o.window, opts().window);
    }

    #[test]
    fn apply_sets_the_named_knobs() {
        let d = ConfigDelta::parse("l1d_mshr=1,ruu=16,mem=const200").unwrap();
        let (config, _) = d.apply(&opts());
        assert_eq!(config.l1d.mshr_entries, 1);
        assert_eq!(config.core.ruu_entries, 16);
        assert_eq!(config.core.lsq_entries, 16);
        assert!(matches!(
            config.memory,
            MemoryModel::Constant { latency: 200 }
        ));
    }

    #[test]
    fn window_knob_scales_only_the_measured_window() {
        let d = ConfigDelta::parse("win=quarter").unwrap();
        let (_, o) = d.apply(&opts());
        assert_eq!(o.window.skip, 2_000);
        assert_eq!(o.window.simulate, 2_000);
    }

    #[test]
    fn sampling_is_deterministic_and_valid() {
        let o = opts();
        for i in 0..200 {
            let (b1, d1) = sample_cell(0xC0FFEE, i, &o);
            let (b2, d2) = sample_cell(0xC0FFEE, i, &o);
            assert_eq!((b1, &d1), (b2, &d2));
            assert!(d1.is_valid(&o), "cell {i} sampled invalid {}", d1.key());
        }
    }

    #[test]
    fn sampling_covers_nonbaseline_cells() {
        let o = opts();
        let nonempty = (0..64)
            .filter(|i| !sample_cell(7, *i, &o).1.is_empty())
            .count();
        assert!(nonempty > 32, "only {nonempty}/64 cells had deltas");
    }

    #[test]
    fn without_entry_shrinks_by_one() {
        let d = ConfigDelta::new(vec![(1, 1), (4, 2)]);
        let smaller = d.without_entry(0);
        assert_eq!(smaller.len(), 1);
        assert!(smaller.is_subset_of(&d));
    }
}
