//! Probing one cell through both model tiers and deciding whether the
//! tiers are inconsistent there.
//!
//! Both tiers normalize by their own Base run, so the comparison is over
//! mechanism *speedups*, not raw CPI — the analytic stack has a known
//! systematic magnitude bias, and speedup ratios cancel it. The analytic
//! model also carries a per-benchmark *residual* divergence even at the
//! baseline configuration, so cliffness is judged **relative to the
//! benchmark's baseline cell**: a cell is a cliff when moving knobs away
//! from baseline grows the tier divergence beyond the bound
//! ([`CliffKind::Disagreement`]) or introduces a decisive mechanism-pair
//! ordering flip that baseline does not have ([`CliffKind::RankFlip`]).

use crate::space::ConfigDelta;
use microlib::{rank_by_speedup, run_analytic, run_one_with, ArtifactStore, SimError, SimOptions};
use microlib_mech::MechanismKind;
use std::sync::Arc;

/// The mechanism set probed by default: Base plus four mechanisms chosen
/// for distinct interactions with the analytic model's assumptions
/// (turnaround prefetch, stride prefetch, victim cache, GHB).
pub const DEFAULT_MECHANISMS: [MechanismKind; 5] = [
    MechanismKind::Base,
    MechanismKind::Tp,
    MechanismKind::Sp,
    MechanismKind::Tkvc,
    MechanismKind::Ghb,
];

/// Speedup gap below which two mechanisms are considered tied for
/// rank-flip purposes — orderings inside the margin are noise, not
/// disagreement.
pub const RANK_MARGIN: f64 = 0.02;

/// Reads the injected analytic-CPI perturbation from
/// `MICROLIB_MINE_PERTURB` (fraction, default 0). Read per call so tests
/// and the CI negative gate can toggle it without process restarts.
pub fn perturb_from_env() -> f64 {
    std::env::var("MICROLIB_MINE_PERTURB")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0.0)
}

/// One mechanism's measurements in both tiers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierPair {
    /// The mechanism.
    pub mechanism: MechanismKind,
    /// Detailed-simulator CPI.
    pub detailed_cpi: f64,
    /// Analytic-stack CPI (after any injected perturbation).
    pub analytic_cpi: f64,
    /// Detailed speedup over the probed Base (1.0 for Base itself).
    pub detailed_speedup: f64,
    /// Analytic speedup over the probed Base (1.0 for Base itself).
    pub analytic_speedup: f64,
}

/// Why a cell is inconsistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CliffKind {
    /// Tier speedups diverge beyond the bound.
    Disagreement,
    /// The tiers decisively order some mechanism pair opposite ways.
    RankFlip,
}

impl CliffKind {
    /// Stable record label.
    pub fn label(&self) -> &'static str {
        match self {
            CliffKind::Disagreement => "disagreement",
            CliffKind::RankFlip => "rank-flip",
        }
    }

    /// Parses a [`label`](CliffKind::label).
    pub fn parse(s: &str) -> Option<CliffKind> {
        match s {
            "disagreement" => Some(CliffKind::Disagreement),
            "rank-flip" => Some(CliffKind::RankFlip),
            _ => None,
        }
    }
}

/// Both tiers' view of one cell.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeOutcome {
    /// Per-mechanism measurements, in probe order (Base first).
    pub pairs: Vec<TierPair>,
    /// Non-Base mechanisms by detailed speedup, best first.
    pub detailed_rank: Vec<MechanismKind>,
    /// Non-Base mechanisms by analytic speedup, best first.
    pub analytic_rank: Vec<MechanismKind>,
    /// Largest relative speedup divergence across non-Base mechanisms.
    pub max_rel_err: f64,
}

impl ProbeOutcome {
    /// Signed relative speedup error per non-Base mechanism:
    /// `(analytic − detailed) / detailed`. The analytic tier's
    /// per-mechanism *bias* at this cell.
    pub fn rel_errs(&self) -> Vec<(MechanismKind, f64)> {
        self.pairs
            .iter()
            .filter(|p| p.mechanism != MechanismKind::Base && p.detailed_speedup > 0.0)
            .map(|p| {
                (
                    p.mechanism,
                    (p.analytic_speedup - p.detailed_speedup) / p.detailed_speedup,
                )
            })
            .collect()
    }

    /// The largest per-mechanism *shift* in signed relative error
    /// between `baseline` and this cell — how badly the analytic tier
    /// failed to track the detailed tier's response to the knob change.
    /// Zero for the baseline against itself.
    pub fn divergence_shift(&self, baseline: &ProbeOutcome) -> f64 {
        let base = baseline.rel_errs();
        self.rel_errs()
            .iter()
            .filter_map(|(m, e)| {
                base.iter()
                    .find(|(bm, _)| bm == m)
                    .map(|(_, be)| (e - be).abs())
            })
            .fold(0.0f64, f64::max)
    }

    /// Classifies the cell against the same benchmark's `baseline` cell:
    /// a per-mechanism divergence shift beyond `bound` first, then
    /// decisive ranking flips not present at baseline. By construction
    /// the baseline cell itself is never a cliff, so minimization always
    /// terminates on the knobs that *create* the inconsistency.
    pub fn cliff_kind(&self, baseline: &ProbeOutcome, bound: f64) -> Option<CliffKind> {
        if self.divergence_shift(baseline) > bound {
            return Some(CliffKind::Disagreement);
        }
        let base_flips = baseline.decisive_flips();
        if self
            .decisive_flips()
            .iter()
            .any(|pair| !base_flips.contains(pair))
        {
            return Some(CliffKind::RankFlip);
        }
        None
    }

    /// The mechanism pairs ordered opposite ways by the two tiers with
    /// both tiers' speedup gaps exceeding [`RANK_MARGIN`], in canonical
    /// order.
    pub fn decisive_flips(&self) -> Vec<(MechanismKind, MechanismKind)> {
        let non_base: Vec<&TierPair> = self
            .pairs
            .iter()
            .filter(|p| p.mechanism != MechanismKind::Base)
            .collect();
        let mut flips = Vec::new();
        for (i, a) in non_base.iter().enumerate() {
            for b in &non_base[i + 1..] {
                let d_gap = a.detailed_speedup - b.detailed_speedup;
                let a_gap = a.analytic_speedup - b.analytic_speedup;
                if d_gap.abs() > RANK_MARGIN && a_gap.abs() > RANK_MARGIN && d_gap * a_gap < 0.0 {
                    flips.push((a.mechanism, b.mechanism));
                }
            }
        }
        flips
    }
}

/// Probes one cell: runs every mechanism of `mechanisms` (Base must come
/// first) through the detailed simulator and the analytic tier under
/// `delta` applied to the baseline, and compares the tiers.
///
/// Detailed runs go through [`run_one_with`], so they are memoized,
/// lease-coordinated and fault-aware exactly like campaign cells; the
/// analytic runs are cheap enough to recompute.
///
/// # Errors
///
/// Propagates any [`SimError`] from either tier (an unknown benchmark,
/// an invalid configuration, a detailed-run timeout on a degenerate
/// cell).
pub fn probe(
    store: &ArtifactStore,
    delta: &ConfigDelta,
    benchmark: &str,
    mechanisms: &[MechanismKind],
    base_opts: &SimOptions,
) -> Result<ProbeOutcome, SimError> {
    assert_eq!(
        mechanisms.first(),
        Some(&MechanismKind::Base),
        "probe mechanism sets must lead with Base"
    );
    let (config, opts) = delta.apply(base_opts);
    let config = Arc::new(config);
    let perturb = perturb_from_env();

    let mut raw = Vec::with_capacity(mechanisms.len());
    for &mech in mechanisms {
        let detailed = run_one_with(store, &config, mech, benchmark, &opts)?;
        let analytic = run_analytic(store, &config, mech, benchmark, &opts)?;
        let detailed_cpi = if detailed.perf.instructions == 0 {
            0.0
        } else {
            detailed.perf.cycles as f64 / detailed.perf.instructions as f64
        };
        raw.push((mech, detailed_cpi, analytic.cpi() * (1.0 + perturb)));
    }

    let (base_d, base_a) = (raw[0].1, raw[0].2);
    let speedup = |base: f64, cpi: f64| if cpi > 0.0 { base / cpi } else { 0.0 };
    let pairs: Vec<TierPair> = raw
        .iter()
        .map(|&(mechanism, detailed_cpi, analytic_cpi)| TierPair {
            mechanism,
            detailed_cpi,
            analytic_cpi,
            detailed_speedup: speedup(base_d, detailed_cpi),
            analytic_speedup: speedup(base_a, analytic_cpi),
        })
        .collect();

    let rank_of = |key: fn(&TierPair) -> f64| -> Vec<MechanismKind> {
        let rows: Vec<(MechanismKind, f64)> = pairs
            .iter()
            .filter(|p| p.mechanism != MechanismKind::Base)
            .map(|p| (p.mechanism, key(p)))
            .collect();
        rank_by_speedup(&rows)
            .into_iter()
            .map(|r| r.mechanism)
            .collect()
    };
    let detailed_rank = rank_of(|p| p.detailed_speedup);
    let analytic_rank = rank_of(|p| p.analytic_speedup);

    let max_rel_err = pairs
        .iter()
        .filter(|p| p.mechanism != MechanismKind::Base && p.detailed_speedup > 0.0)
        .map(|p| (p.analytic_speedup - p.detailed_speedup).abs() / p.detailed_speedup)
        .fold(0.0f64, f64::max);

    Ok(ProbeOutcome {
        pairs,
        detailed_rank,
        analytic_rank,
        max_rel_err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(m: MechanismKind, d: f64, a: f64) -> TierPair {
        TierPair {
            mechanism: m,
            detailed_cpi: 1.0 / d,
            analytic_cpi: 1.0 / a,
            detailed_speedup: d,
            analytic_speedup: a,
        }
    }

    fn outcome(pairs: Vec<TierPair>) -> ProbeOutcome {
        let max_rel_err = pairs
            .iter()
            .filter(|p| p.mechanism != MechanismKind::Base)
            .map(|p| (p.analytic_speedup - p.detailed_speedup).abs() / p.detailed_speedup)
            .fold(0.0f64, f64::max);
        ProbeOutcome {
            pairs,
            detailed_rank: vec![],
            analytic_rank: vec![],
            max_rel_err,
        }
    }

    fn agreeing_baseline() -> ProbeOutcome {
        outcome(vec![
            pair(MechanismKind::Base, 1.0, 1.0),
            pair(MechanismKind::Sp, 1.20, 1.21),
            pair(MechanismKind::Ghb, 1.10, 1.11),
        ])
    }

    #[test]
    fn agreement_is_not_a_cliff() {
        let o = outcome(vec![
            pair(MechanismKind::Base, 1.0, 1.0),
            pair(MechanismKind::Sp, 1.20, 1.22),
            pair(MechanismKind::Ghb, 1.10, 1.09),
        ]);
        assert_eq!(o.cliff_kind(&agreeing_baseline(), 0.25), None);
    }

    #[test]
    fn baseline_is_never_a_cliff_against_itself() {
        // Even a benchmark whose tiers diverge badly at baseline is
        // consistent relative to itself — only *excess* divergence mines.
        let o = outcome(vec![
            pair(MechanismKind::Base, 1.0, 1.0),
            pair(MechanismKind::Sp, 1.50, 1.05),
            pair(MechanismKind::Ghb, 1.00, 1.10),
        ]);
        assert_eq!(o.cliff_kind(&o, 0.25), None);
    }

    #[test]
    fn excess_divergence_beyond_bound_is_a_disagreement() {
        let o = outcome(vec![
            pair(MechanismKind::Base, 1.0, 1.0),
            pair(MechanismKind::Sp, 1.50, 1.05),
        ]);
        assert_eq!(
            o.cliff_kind(&agreeing_baseline(), 0.25),
            Some(CliffKind::Disagreement)
        );
    }

    #[test]
    fn new_decisive_opposite_ordering_is_a_rank_flip() {
        let o = outcome(vec![
            pair(MechanismKind::Base, 1.0, 1.0),
            pair(MechanismKind::Sp, 1.10, 1.00),
            pair(MechanismKind::Ghb, 1.00, 1.10),
        ]);
        assert_eq!(
            o.cliff_kind(&agreeing_baseline(), 0.25),
            Some(CliffKind::RankFlip)
        );
    }

    #[test]
    fn flips_already_present_at_baseline_do_not_mine() {
        let flipped = outcome(vec![
            pair(MechanismKind::Base, 1.0, 1.0),
            pair(MechanismKind::Sp, 1.10, 1.00),
            pair(MechanismKind::Ghb, 1.00, 1.10),
        ]);
        assert_eq!(flipped.cliff_kind(&flipped, 0.25), None);
    }

    #[test]
    fn flips_within_the_margin_are_ties() {
        let o = outcome(vec![
            pair(MechanismKind::Base, 1.0, 1.0),
            pair(MechanismKind::Sp, 1.010, 1.000),
            pair(MechanismKind::Ghb, 1.000, 1.010),
        ]);
        assert_eq!(o.cliff_kind(&agreeing_baseline(), 0.25), None);
    }

    #[test]
    fn kind_labels_round_trip() {
        for k in [CliffKind::Disagreement, CliffKind::RankFlip] {
            assert_eq!(CliffKind::parse(k.label()), Some(k));
        }
        assert_eq!(CliffKind::parse("avalanche"), None);
    }
}
